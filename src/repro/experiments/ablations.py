"""Ablation studies for the design choices DESIGN.md calls out.

Each function varies one architectural parameter of the simulated
machine and reports its effect through the same measurement machinery
as the paper's tables:

* prefetch block size (RK's 256-word blocks vs compiler 32-word ones);
* switch queue depth (the two-word port queues);
* DRAM recovery (the [Turn93] "implementation constraint");
* sync-hardware self-scheduling (Table 3's ablation, at the loop level);
* PPT5: a scaled-up (8-cluster, 64-CE) Cedar on the same kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.experiments.kernels_sim import _run
from repro.kernels.programs import KERNELS, KernelShape, kernel_program
from repro.util.tables import Table


@dataclass(frozen=True)
class AblationPoint:
    setting: str
    latency: Optional[float]
    interarrival: Optional[float]
    mflops: float


def _measure(config: CedarConfig, kernel: str, n_ces: int, strips: int = 8,
             shape: Optional[KernelShape] = None) -> AblationPoint:
    if shape is None:
        m = _run(config, kernel, n_ces, True, strips)
        return AblationPoint("", m.latency, m.interarrival, m.mflops)
    machine = CedarMachine(config, monitor_port=0)
    programs = {
        port: kernel_program(shape, port, strips, prefetch=True)
        for port in range(n_ces)
    }
    cycles = machine.run_programs(programs)
    seconds = cycles * config.ce.cycle_ns * 1e-9
    summary = machine.probe.summary()
    rate = shape.flops * strips * n_ces / seconds / 1e6
    return AblationPoint("", summary.first_word_latency, summary.interarrival, rate)


@lru_cache(maxsize=1)
def ablate_prefetch_block_size(n_ces: int = 32) -> Tuple[AblationPoint, ...]:
    """RK with 64/128/256-word prefetch blocks: longer blocks raise
    throughput per CE but also contention (Table 2: "RK degrades most
    quickly due to the fact that it uses the longest prefetch block")."""
    out = []
    base = KERNELS["RK"]
    for block in (64, 128, 256):
        shape = replace(
            base,
            streams=(block,),
            flops=2.0 * block,
            prefetch_block=block,
            store_words=max(1, block // 64),
            plain_load_words=max(1, block // 64),
        )
        point = _measure(CedarConfig(), "RK", n_ces, strips=max(8, 2048 // block),
                         shape=shape)
        out.append(replace(point, setting=f"block={block}"))
    return tuple(out)


@lru_cache(maxsize=1)
def ablate_switch_queue_depth(kernel: str = "RK", n_ces: int = 32) -> Tuple[AblationPoint, ...]:
    """Deeper switch queues absorb bursts: latency grows, PFU stalls
    shrink.  The paper's two-word queues sit at the shallow end."""
    out = []
    for depth in (1, 2, 4, 8):
        config = CedarConfig()
        config = replace(config, network=replace(config.network, queue_words=depth))
        point = _measure(config, kernel, n_ces)
        out.append(replace(point, setting=f"queue={depth}w"))
    return tuple(out)


@lru_cache(maxsize=1)
def ablate_memory_recovery(kernel: str = "RK", n_ces: int = 32) -> Tuple[AblationPoint, ...]:
    """DRAM recovery 0..2 cycles: the [Turn93] implementation
    constraint; 0 restores the idealized 768 MB/s module throughput."""
    out = []
    for recovery in (0.0, 1.0, 2.0):
        config = CedarConfig()
        config = replace(
            config,
            global_memory=replace(config.global_memory, recovery_cycles=recovery),
        )
        point = _measure(config, kernel, n_ces)
        out.append(replace(point, setting=f"recovery={recovery:g}"))
    return tuple(out)


@lru_cache(maxsize=1)
def ablate_shared_network(kernel: str = "RK", n_ces: int = 32) -> Tuple[AblationPoint, ...]:
    """Two unidirectional networks (Cedar's design) vs one shared
    fabric carrying both requests and replies.

    The shared fabric has a *protocol deadlock*: under load, replies
    queue behind requests whose memory modules cannot accept more work
    until their own replies drain — a circular wait.  Giving replies
    their own injection buffering (``reply_escape``) does NOT fix it:
    the cycle closes through the shared stage queues, the textbook
    argument that request/reply isolation must extend through *every*
    buffer on the path (full virtual channels — which, taken to its
    conclusion, is Cedar's two physically separate networks).  The
    ablation runs each configuration under a livelock guard and
    reports DEADLOCK when it trips."""
    from repro.core.engine import SimulationError

    variants = (
        ("two networks (Cedar)", False, False),
        ("one shared network", True, False),
        ("one shared + reply escape", True, True),
    )
    out = []
    for label, shared, escape in variants:
        config = CedarConfig()
        config = replace(
            config,
            network=replace(
                config.network,
                shared_single_network=shared,
                reply_escape=escape,
            ),
        )
        shape = KERNELS[kernel]
        machine = CedarMachine(config, monitor_port=0)
        programs = {
            port: kernel_program(shape, port, 6, prefetch=True)
            for port in range(n_ces)
        }
        try:
            # a healthy run of this size needs ~300k events; a livelocked
            # one burns events on PFU retries without progress
            cycles = machine.run_programs(programs, max_events=1_200_000)
        except SimulationError:
            out.append(AblationPoint(f"{label} [DEADLOCK]", None, None, 0.0))
            continue
        seconds = cycles * config.ce.cycle_ns * 1e-9
        summary = machine.probe.summary()
        rate = shape.flops * 6 * n_ces / seconds / 1e6
        out.append(
            AblationPoint(label, summary.first_word_latency,
                          summary.interarrival, rate)
        )
    return tuple(out)


@lru_cache(maxsize=1)
def ablate_scaled_up_cedar(kernel: str = "TM") -> Dict[str, AblationPoint]:
    """PPT5 evidence: an 8-cluster 64-CE Cedar with a proportionally
    scaled global memory, on the same kernel."""
    base = CedarConfig()
    big = replace(
        base,
        clusters=8,
        global_memory=replace(base.global_memory, modules=64),
    )
    return {
        "4x8 (Cedar)": replace(_measure(base, kernel, 32), setting="4x8"),
        "8x8 (scaled)": replace(_measure(big, kernel, 64), setting="8x8"),
    }


def render_ablation(title: str, points) -> str:
    table = Table(
        title=title,
        columns=["setting", "latency (cyc)", "interarrival (cyc)", "MFLOPS"],
        precision=2,
    )
    items = points.values() if isinstance(points, dict) else points
    for p in items:
        table.add_row([p.setting, p.latency, p.interarrival, p.mflops])
    return table.render()
