"""Illustrative Fortran sketches of the Perfect codes' key loops.

The performance model runs on the derived profiles (``profiles.py``);
these sketches are the *readable* form of each code's parallelization
story: a few loops in the supported Fortran dialect exhibiting exactly
the obstacles Section 3.3 names for that code.  Tests assert that the
KAP and automatable pipelines reach the same verdict pattern on the
parsed sketches as on the profile IR — i.e. the story is told twice,
once for machines and once for humans, and the two agree.

The loops are *sketches*, not the real Perfect sources (which we do
not have; see DESIGN.md's substitution table): array names and bounds
are illustrative, the dependence structure is the point.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.restructurer.ir import Program
from repro.restructurer.parser import parse_loop

#: per code: list of (label, expected_kap_parallel, expected_auto_parallel, source)
SKETCHES: Dict[str, List[Tuple[str, bool, bool, str]]] = {
    "ADM": [
        ("vertical sweep", True, True, """
            DO K = 1, 64
              Q(K) = P(K) * DT
            END DO
        """),
        ("workspace per column", False, True, """
            DO J = 1, 128
              WRK(1) = U(J)
              WRK(2) = V(J)
              FLUX(J) = WRK(1) * WRK(2)
            END DO
        """),
    ],
    "ARC2D": [
        ("implicit sweep", True, True, """
            DO J = 1, 512
              RHS(J) = DTI * Q(J)
            END DO
        """),
        ("pressure workspace", False, True, """
            DO J = 1, 512
              WORK(1) = Q(J) * GAMMA
              P(J) = WORK(1) + PINF
            END DO
        """),
    ],
    "BDNA": [
        ("force accumulation workspace", False, True, """
            DO I = 1, 1024
              F(1) = X(I) * CHARGE
              FORCE(I) = F(1) + FIELD(I)
            END DO
        """),
    ],
    "DYFESM": [
        ("element stiffness", True, True, """
            DO IE = 1, 256
              KE(IE) = E * AREA(IE)
            END DO
        """),
        ("energy reduction", False, True, """
            DO IE = 1, 256
              ENERGY = ENERGY + KE(IE) * U(IE)
            END DO
        """),
    ],
    "FLO52": [
        ("flux sweep", True, True, """
            DO I = 1, 192
              FS(I) = W(I) * RLV
            END DO
        """),
        ("residual norm", False, True, """
            DO I = 1, 192
              RSUM = RSUM + DW(I) * DW(I)
            END DO
        """),
    ],
    "MDG": [
        ("pair interactions workspace", False, True, """
            DO I = 1, 512
              RS(1) = XM(I) * XM(I)
              RS(2) = YM(I) * YM(I)
              GPOT(I) = RS(1) + RS(2)
            END DO
        """),
        ("velocity update", True, True, """
            DO I = 1, 512
              VEL(I) = VEL(I) + ACC(I)
            END DO
        """),
    ],
    "MG3D": [
        ("trace migration induction", False, True, """
            DO IT = 1, 1000
              KOFF = KOFF * 2
              TRACE(IT) = FIELD(KOFF) + TRACE(IT)
            END DO
        """),
    ],
    "OCEAN": [
        ("scatter to grid", False, True, """
            DO I = 1, 4096
              GRID(LOC(I)) = GRID(LOC(I)) + FK(I)
            END DO
        """),
        ("diagnostic copy", True, True, """
            DO I = 1, 4096
              SAVEU(I) = U(I)
            END DO
        """),
    ],
    "QCD": [
        ("link update gather", False, True, """
            DO I = 1, 2048
              LINK(NBR(I)) = LINK(NBR(I)) * STAPLE(I)
            END DO
        """),
    ],
    "SPEC77": [
        ("spectral workspace", False, True, """
            DO M = 1, 256
              COEF(1) = PLN(M) * WGT
              VORT(M) = COEF(1) + DIV(M)
            END DO
        """),
    ],
    "SPICE": [
        ("matrix stamp (sparse pointers)", False, True, """
            DO IEL = 1, 512
              G(NODEPTR(IEL)) = G(NODEPTR(IEL)) + COND(IEL)
            END DO
        """),
    ],
    "TRACK": [
        ("track extension calls", False, True, """
            DO IT = 1, 128
              CALL EXTEND_SAVE(TRK(IT))
            END DO
        """),
    ],
    "TRFD": [
        ("integral-transform induction", False, True, """
            DO IJ = 1, 2048
              MRS = MRS * 2
              XIJ(IJ) = XRS(MRS) + XIJ(IJ)
            END DO
        """),
        ("transform sweep", True, True, """
            DO I = 1, 2048
              V(I) = X(I) * W(I)
            END DO
        """),
    ],
}


def sketch_program(code_name: str) -> Program:
    """Parse one code's sketch loops into a restructurer program."""
    entries = SKETCHES[code_name]
    weight = 1.0 / len(entries)
    loops = [
        parse_loop(source, weight=weight, label=label)
        for label, _, _, source in entries
    ]
    return Program(name=f"{code_name} (sketch)", loops=loops, serial_fraction=0.0)


def expected_verdicts(code_name: str) -> List[Tuple[str, bool, bool]]:
    return [(label, kap, auto) for label, kap, auto, _ in SKETCHES[code_name]]
