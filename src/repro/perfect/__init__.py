"""The Perfect Benchmarks® on Cedar (Sections 3.3 and 4.2).

We do not have the Perfect Fortran sources or an Alliant compiler; per
the substitution policy (DESIGN.md) each code is represented by a
:class:`~repro.perfect.profiles.CodeProfile`:

* a loop-nest IR sketch carrying the parallelization obstacles the
  paper names for that code (array privatization, reductions, advanced
  induction, runtime tests, SAVE/RETURN, recurrences) — the
  restructurer pipelines genuinely succeed or fail on them;
* physical parameters (serial time, flop count, loop granularity,
  invocation counts, global-access fraction, vector speedup) *derived*
  from the paper's published measurements by the inverse model in
  ``profiles.py`` — the derivation is the documented calibration.

The forward model (``repro.perf``) then regenerates Table 3's four
versions, and the sync/prefetch ablation columns emerge from the
runtime-library and memory mechanics rather than from copied numbers.
"""

from repro.perfect.profiles import (
    CodeProfile,
    LoopProfile,
    PAPER_TABLE3,
    PERFECT_CODES,
    Table3Reference,
)
from repro.perfect.ir_builder import build_ir
from repro.perfect.handopt import HANDOPT_MODELS, HandOptimization
from repro.perfect.sizing import scale_problem, size_band, size_stability
from repro.perfect.sources import SKETCHES, sketch_program

__all__ = [
    "CodeProfile",
    "LoopProfile",
    "PAPER_TABLE3",
    "PERFECT_CODES",
    "Table3Reference",
    "build_ir",
    "HANDOPT_MODELS",
    "HandOptimization",
    "scale_problem",
    "size_band",
    "size_stability",
    "SKETCHES",
    "sketch_program",
]
