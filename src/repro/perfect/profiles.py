"""Perfect Benchmark workload profiles and their derivation.

``PAPER_TABLE3`` embeds the published measurements (execution time and
improvement for the Kap/Cedar and automatable versions, the slowdowns
without Cedar synchronization and without prefetch, delivered MFLOPS,
and the YMP-8/Cedar MFLOPS ratio).

``derive_profile`` inverts the application performance model:

* the **serial time** is ``automatable_time x automatable_improvement``
  (both versions' products agree to within a few percent in the paper);
* the chosen **vector speedup** ``v`` reflects each code's character
  (vectorizable CFD codes high, pointer/scalar codes near 1);
* the **parallel coverage** ``c`` then follows from Amdahl's law given
  the automatable time: ``c = (Ts - Ta + ovh) / (Ts (1 - 1/(P v)))``;
* the **Kap-parallel share** ``w1`` follows the same way from the Kap
  time — the rest of the coverage, ``w2``, is parallel only after the
  advanced transforms, and the IR builder attaches exactly the advanced
  obstacle the paper names for the code to the ``w2`` loop;
* the **invocation count** follows from the without-synchronization
  slowdown (each loop invocation pays the runtime library's fetch
  overhead, which triples without the synchronization hardware);
* the **global vector fraction** follows from the without-prefetch
  slowdown (prefetched global accesses cost ~5.7x more without the
  PFU, from the GM/no-pref vs GM/pref calibration of Table 1).

The derivation is the calibration; the forward model in ``repro.perf``
computes Table 3 from these profiles without referring back to the
published times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.xylem.runtime import LoopKind

#: machine width used in the paper's runs.
CEDAR_CES = 32

#: without-prefetch inflation of a prefetched global vector access
#: (GM/no-pref vs GM/pref word costs: 6.5 / 1.15, Table 1 calibration).
NOPREF_INFLATION = 6.5 / 1.15

#: XDOALL fetch overhead delta when Cedar synchronization is disabled
#: (30 us -> 90 us), in seconds.
SYNC_FETCH_DELTA_S = 60e-6

#: XDOALL scheduling costs (seconds).
XDOALL_STARTUP_S = 90e-6
XDOALL_FETCH_S = 30e-6


@dataclass(frozen=True)
class Table3Reference:
    """One row of the paper's Table 3."""

    kap_time: float
    kap_improvement: float
    auto_time: Optional[float]
    auto_improvement: Optional[float]
    no_sync_slowdown: Optional[float]   # fraction, e.g. 0.11
    no_prefetch_slowdown: Optional[float]
    mflops: float
    ymp_ratio: float                    # YMP-8 MFLOPS / Cedar MFLOPS

    @property
    def serial_time(self) -> float:
        if self.auto_time is not None and self.auto_improvement is not None:
            return self.auto_time * self.auto_improvement
        return self.kap_time * self.kap_improvement


PAPER_TABLE3: Dict[str, Table3Reference] = {
    "ADM": Table3Reference(689, 1.2, 73, 10.8, 0.11, 0.02, 6.9, 3.4),
    "ARC2D": Table3Reference(218, 13.5, 141, 20.8, 0.00, 0.11, 13.1, 34.2),
    "BDNA": Table3Reference(502, 1.9, 111, 8.7, 0.06, 0.03, 8.2, 18.4),
    "DYFESM": Table3Reference(167, 3.9, 60, 11.0, 0.12, 0.49, 9.2, 6.5),
    "FLO52": Table3Reference(100, 9.0, 63, 14.3, 0.01, 0.23, 8.7, 37.8),
    "MDG": Table3Reference(3200, 1.3, 182, 22.7, 0.11, 0.00, 18.9, 11.1),
    "MG3D": Table3Reference(7929, 1.5, 348, 35.2, 0.00, 0.01, 31.7, 3.6),
    "OCEAN": Table3Reference(2158, 1.4, 148, 19.8, 0.18, 0.07, 11.2, 7.4),
    "QCD": Table3Reference(369, 1.1, 239, 1.8, 0.00, 0.03, 1.1, 1 / 1.8),
    "SPEC77": Table3Reference(973, 2.4, 156, 15.2, 0.00, 0.06, 11.9, 4.8),
    "SPICE": Table3Reference(95.1, 1.02, None, None, None, None, 0.5, 1 / 1.4),
    "TRACK": Table3Reference(126, 1.1, 26, 5.3, 0.08, 0.00, 3.1, 2.7),
    "TRFD": Table3Reference(273, 3.2, 21, 41.1, 0.00, 0.00, 20.5, 2.8),
}


@dataclass(frozen=True)
class LoopProfile:
    """One performance-significant loop (nest) of a Perfect code."""

    label: str
    #: fraction of serial execution time spent here.
    weight: float
    #: how many times the loop nest is entered over the run.
    invocations: int
    #: iterations per invocation.
    trips: int
    kind: LoopKind
    #: per-CE vector speedup of the loop body once parallelized.
    vector_speedup: float
    #: fraction of the loop's (parallel) work that is prefetched global
    #: vector access — determines the without-prefetch penalty.
    global_vector_fraction: float
    #: which restructuring obstacle the loop carries (IR builder key):
    #: "clean", "scalar_private", "array_private", "reduction",
    #: "adv_induction", "runtime_test", "save_call", "recurrence".
    feature: str = "clean"
    #: loops dominated by scalar global accesses gain nothing from
    #: prefetch regardless of their global fraction (TRACK).
    scalar_dominated: bool = False
    ragged: bool = False


@dataclass(frozen=True)
class CodeProfile:
    """A Perfect code: physical profile + restructuring structure."""

    name: str
    #: uniprocessor scalar execution time, seconds.
    serial_seconds: float
    #: total floating-point operations (from delivered MFLOPS x time).
    flops: float
    loops: Tuple[LoopProfile, ...]
    #: fraction of serial time outside all parallelizable loops.
    serial_fraction: float
    #: share of the serial fraction that is file I/O (BDNA's formatted
    #: I/O, MG3D's file elimination footnote, hand-opt lever).
    io_fraction_of_serial: float = 0.0
    notes: str = ""

    def loop(self, label: str) -> LoopProfile:
        for lp in self.loops:
            if lp.label == label:
                return lp
        raise KeyError(f"{self.name}: no loop {label!r}")


#: per-code modelling choices: (vector speedup v, advanced obstacle of
#: the automatable-only loop, scalar_dominated, io share of serial,
#: notes).  The obstacle names follow Section 3.3's per-code discussion
#: and the transform list; vector speedups reflect each code's
#: character (CFD/spectral codes vectorize well; particle/circuit codes
#: are scalar).
_CODE_CHARACTER: Dict[str, Tuple[float, str, bool, float, str]] = {
    "ADM": (3.0, "array_private", False, 0.05,
            "pseudospectral air-quality model; needs array privatization"),
    "ARC2D": (5.5, "array_private", False, 0.10,
              "implicit CFD; highly vectorizable, KAP already parallelizes most"),
    "BDNA": (3.5, "array_private", False, 0.55,
             "molecular dynamics of DNA; formatted I/O dominates serial part"),
    "DYFESM": (3.0, "reduction", False, 0.05,
               "structural dynamics; small problem, fine-grain loops"),
    "FLO52": (5.0, "reduction", False, 0.05,
              "multigrid CFD; multicluster barrier sequences"),
    "MDG": (2.5, "array_private", False, 0.02,
            "water molecular dynamics; privatization + reductions"),
    "MG3D": (4.0, "adv_induction", False, 0.30,
             "seismic migration; file I/O eliminated in the measured version"),
    "OCEAN": (3.0, "runtime_test", False, 0.05,
              "2-D ocean FFT code; index arrays and small loops"),
    "QCD": (1.3, "runtime_test", False, 0.01,
            "lattice gauge; serial random-number generator limits parallelism"),
    "SPEC77": (4.0, "array_private", False, 0.08,
               "spectral weather; reductions and workspaces"),
    "SPICE": (1.1, "runtime_test", True, 0.05,
              "circuit simulation; pointer-chasing, essentially serial"),
    "TRACK": (1.5, "save_call", True, 0.05,
              "missile tracking; scalar-dominated small loops"),
    "TRFD": (1.7, "adv_induction", False, 0.02,
             "two-electron integral transform; coupled inductions"),
}


def derive_profile(name: str, ref: Table3Reference) -> CodeProfile:
    """Invert the performance model for one code (see module docstring)."""
    v, obstacle, scalar_dom, io_share, notes = _CODE_CHARACTER[name]
    ts = ref.serial_time
    p = CEDAR_CES
    k = 1.0 - 1.0 / (p * v)
    trips = p  # one wave per invocation; waves > 1 add nothing new
    waves = 1

    if ref.auto_time is None:
        # SPICE: no automatable version; everything KAP can't do stays serial.
        c_kap = max(0.0, (ts - ref.kap_time) / (ts * k))
        loops = (
            LoopProfile(
                label="kap_loops",
                weight=round(c_kap, 6),
                invocations=10,
                trips=trips,
                kind=LoopKind.XDOALL,
                vector_speedup=v,
                global_vector_fraction=0.0,
                feature="clean",
                scalar_dominated=scalar_dom,
            ),
            LoopProfile(
                label="serial_core",
                weight=round(1.0 - c_kap - 0.9, 6) if c_kap + 0.9 < 1 else 0.0,
                invocations=1,
                trips=trips,
                kind=LoopKind.XDOALL,
                vector_speedup=1.0,
                global_vector_fraction=0.0,
                feature="recurrence",
                scalar_dominated=scalar_dom,
            ),
        )
        # collapse: single kap loop + serial rest
        loops = (loops[0],)
        return CodeProfile(
            name=name,
            serial_seconds=ts,
            flops=ref.mflops * 1e6 * ref.kap_time,
            loops=loops,
            serial_fraction=round(1.0 - loops[0].weight, 6),
            io_fraction_of_serial=io_share,
            notes=notes,
        )

    # invocation count from the without-synchronization slowdown
    dt_sync = (ref.no_sync_slowdown or 0.0) * ref.auto_time
    invocations = max(10, int(round(dt_sync / (waves * SYNC_FETCH_DELTA_S))))
    ovh = invocations * (XDOALL_STARTUP_S + waves * XDOALL_FETCH_S)

    c = (ts - ref.auto_time + ovh) / (ts * k)
    w2 = (ref.kap_time - ref.auto_time) / (ts * k)
    w1 = c - w2
    if not (0.0 <= w2 <= 1.0 and 0.0 < c <= 1.0):
        raise ValueError(f"{name}: inverse model out of range (c={c:.3f}, w2={w2:.3f})")
    if w1 < 0:
        w1, w2 = 0.0, c

    # global vector fraction from the without-prefetch slowdown
    t_par_compute = c * ts / (p * v)
    dt_pref = (ref.no_prefetch_slowdown or 0.0) * ref.auto_time
    gfv = 0.0
    if not scalar_dom and t_par_compute > 0:
        gfv = min(1.0, dt_pref / (t_par_compute * (NOPREF_INFLATION - 1.0)))

    inv1 = max(1, int(round(invocations * (w1 / c)))) if w1 > 0 else 0
    inv2 = max(1, invocations - inv1)

    loops: List[LoopProfile] = []
    if w1 > 0:
        loops.append(
            LoopProfile(
                label="kap_loops",
                weight=round(w1, 6),
                invocations=inv1,
                trips=trips,
                kind=LoopKind.XDOALL,
                vector_speedup=v,
                global_vector_fraction=gfv,
                feature="clean",
                scalar_dominated=scalar_dom,
            )
        )
    loops.append(
        LoopProfile(
            label="advanced_loops",
            weight=round(w2, 6),
            invocations=inv2,
            trips=trips,
            kind=LoopKind.XDOALL,
            vector_speedup=v,
            global_vector_fraction=gfv,
            feature=obstacle,
            scalar_dominated=scalar_dom,
        )
    )
    serial_fraction = 1.0 - sum(lp.weight for lp in loops)
    return CodeProfile(
        name=name,
        serial_seconds=ts,
        flops=ref.mflops * 1e6 * ref.auto_time,
        loops=tuple(loops),
        serial_fraction=round(serial_fraction, 6),
        io_fraction_of_serial=io_share,
        notes=notes,
    )


def _build_all() -> Dict[str, CodeProfile]:
    return {name: derive_profile(name, ref) for name, ref in PAPER_TABLE3.items()}


PERFECT_CODES: Dict[str, CodeProfile] = _build_all()
