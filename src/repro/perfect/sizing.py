"""Problem-size scaling of the Perfect workloads (PPT4's second axis).

PPT4 requires that "each code's data size can be scaled up or down on a
given architecture".  The Perfect inputs are fixed (and notoriously
small — "The major problem with DYFESM is the very small problem size
used in the benchmark"), so the paper could not vary them; the profile
representation can.

``scale_problem`` scales a code's data size by ``factor``: loop trip
counts and the serial remainder grow linearly (O(N) data sweeps), so
per-iteration granularity is preserved while loop startup costs
amortize — the mechanism that makes small problems scheduling-bound
and large ones compute-bound.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, Tuple

from repro.metrics.bands import Band, band_for_speedup
from repro.perfect.profiles import CodeProfile, PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE

SIZE_FACTORS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0)


def scale_problem(profile: CodeProfile, factor: float) -> CodeProfile:
    """A new profile with the data size scaled by ``factor``."""
    if factor <= 0:
        raise ValueError("size factor must be positive")
    loops = tuple(
        replace(lp, trips=max(1, int(round(lp.trips * factor))))
        for lp in profile.loops
    )
    return replace(
        profile,
        name=f"{profile.name}(x{factor:g})",
        serial_seconds=profile.serial_seconds * factor,
        flops=profile.flops * factor,
        loops=loops,
    )


@lru_cache(maxsize=1)
def run_size_scaling(processors: int = 32) -> Dict[str, Dict[float, float]]:
    """Speedup of each automatable code at every size factor."""
    from repro.perf.model import CedarApplicationModel  # circular-import guard

    model = CedarApplicationModel(processors=processors)
    single = CedarApplicationModel(processors=1)
    out: Dict[str, Dict[float, float]] = {}
    for name in sorted(PERFECT_CODES):
        base = PERFECT_CODES[name]
        out[name] = {}
        for factor in SIZE_FACTORS:
            scaled = scale_problem(base, factor)
            t1 = single.execute(scaled, AUTOMATABLE_PIPELINE).seconds
            tp = model.execute(scaled, AUTOMATABLE_PIPELINE).seconds
            out[name][factor] = t1 / tp
    return out


def size_band(code: str, factor: float, processors: int = 32) -> Band:
    speedup = run_size_scaling(processors)[code][factor]
    return band_for_speedup(speedup, processors)


def size_stability(code: str, processors: int = 32) -> float:
    """St over the size range — PPT4 uses .5 < St(P, N, 1, 0) < 1."""
    speedups = run_size_scaling(processors)[code]
    values = list(speedups.values())
    return min(values) / max(values)
