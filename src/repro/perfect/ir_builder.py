"""Build restructurer IR programs from Perfect code profiles.

Each loop profile's ``feature`` names the parallelization obstacle the
paper's per-code discussion identifies; the builder emits a loop body
that genuinely exhibits it, so the KAP and automatable pipelines
succeed/fail for the *mechanistic* reason, not by fiat:

* ``clean`` — an independent vector loop (parallel under both);
* ``scalar_private`` — a scalar temporary (KAP handles it);
* ``array_private`` — an array workspace written then read each
  iteration (needs array privatization);
* ``reduction`` — a sum reduction (needs parallel reductions);
* ``adv_induction`` — a coupled induction variable (needs advanced
  substitution);
* ``runtime_test`` — index-array subscripts (needs a runtime test);
* ``save_call`` — a call to a routine with SAVE locals;
* ``recurrence`` — a true recurrence (never parallel).
"""

from __future__ import annotations

from typing import List

from repro.perfect.profiles import CodeProfile, LoopProfile
from repro.restructurer.ir import (
    CallSite,
    Loop,
    Program,
    Statement,
    read,
    read_unknown,
    write,
    write_unknown,
)


def _body_for(feature: str, index: int) -> List[Statement]:
    x, y, w, s, k = (f"{n}{index}" for n in ("x", "y", "w", "s", "k"))
    if feature == "clean":
        return [Statement(lhs=write(y, 1, 0), rhs=[read(x, 1, 0)])]
    if feature == "scalar_private":
        return [
            Statement(lhs=write(s), rhs=[read(x, 1, 0)]),
            Statement(lhs=write(y, 1, 0), rhs=[read(s), read(s)]),
        ]
    if feature == "array_private":
        return [
            Statement(lhs=write(w, 0, 1), rhs=[read(x, 1, 0)]),
            Statement(lhs=write(y, 1, 0), rhs=[read(w, 0, 1)]),
        ]
    if feature == "reduction":
        return [
            Statement(lhs=write(s), rhs=[read(s), read(x, 1, 0)], reduction_op="+"),
        ]
    if feature == "adv_induction":
        return [
            Statement(
                lhs=write(k),
                rhs=[read(k)],
                is_induction_update=True,
                induction_is_advanced=True,
            ),
            Statement(lhs=write(y, 1, 0), rhs=[read(k), read(x, 1, 0)]),
        ]
    if feature == "runtime_test":
        return [Statement(lhs=write_unknown(y), rhs=[read_unknown(y), read(x, 1, 0)])]
    if feature == "save_call":
        return [
            Statement(
                lhs=write(y, 1, 0),
                rhs=[read(x, 1, 0)],
                calls=[CallSite("worker", has_save=True)],
            )
        ]
    if feature == "recurrence":
        return [Statement(lhs=write(y, 1, 0), rhs=[read(y, 1, -1), read(x, 1, 0)])]
    raise ValueError(f"unknown loop feature {feature!r}")


def build_loop(profile: LoopProfile, index: int) -> Loop:
    return Loop(
        var=f"i{index}",
        trips=profile.trips,
        body=_body_for(profile.feature, index),
        label=profile.label,
        weight=profile.weight,
        work_us_per_iteration=0.0,  # filled by the performance model
        scalar_dominated=profile.scalar_dominated,
        ragged=profile.ragged,
    )


def build_ir(code: CodeProfile) -> Program:
    """The restructurer-facing program for one Perfect code."""
    loops = [build_loop(lp, i) for i, lp in enumerate(code.loops)]
    return Program(
        name=code.name,
        loops=loops,
        serial_fraction=code.serial_fraction,
    )
