"""Hand-optimization models (Table 4 and Section 4.2's narratives).

Each Perfect code's manual optimization is modelled as a sequence of
*levers* applied to the component breakdown of its baseline execution
("automatable w/ prefetch and w/o Cedar synchronization", footnote 1:
"We use prefetch but not Cedar synchronization"):

* ``io_speedup`` — BDNA: "simply replacing formatted with unformatted
  1/0";
* ``eliminate_work`` — ARC2D: "a substantial number of unnecessary
  computations ... their elimination";
* ``cluster_distribution`` — ARC2D: "aggressive data distribution into
  cluster memory" removes the global-access share of parallel work;
* ``parallelize_serial`` — QCD: "a hand-coded parallel random number
  generator";
* ``kernel_speedup`` — TRFD/DYFESM: "high performance kernels to
  efficiently exploit the clusters' caches and vector registers";
* ``restructure_barriers`` — FL052: turning a sequence of multicluster
  barriers into one barrier plus concurrency-bus sequences;
* ``cheap_scheduling`` — DYFESM: "exploit the hierarchical
  SDOALL/CDOALL control structure";
* ``fix_vm_behaviour`` — TRFD: the distributed-memory version that
  removes the multicluster TLB-miss storm ([MaEG92], modelled through
  ``repro.vm``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.core.config import VMConfig
from repro.perfect.profiles import CodeProfile, PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE
from repro.vm.paging import VirtualMemory

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.perf.model import CedarApplicationModel, ExecutionResult

Components = Dict[str, float]
Lever = Callable[[Components, CodeProfile], None]


def io_speedup(factor: float) -> Lever:
    def apply(parts: Components, code: CodeProfile) -> None:
        parts["io"] /= factor

    return apply


def eliminate_work(fraction: float) -> Lever:
    """Remove redundant computation from both parallel and serial parts."""

    def apply(parts: Components, code: CodeProfile) -> None:
        parts["parallel"] *= 1.0 - fraction
        parts["serial"] *= 1.0 - fraction

    return apply


def cluster_distribution() -> Lever:
    """Move global vector data into cluster memories: the prefetched
    global share of parallel work now streams from the cluster side.
    Cluster cache/memory access is comparable per word but saves the
    arm overheads and contention; model a modest gain on the global
    share of the parallel component."""

    def apply(parts: Components, code: CodeProfile) -> None:
        gfv = max((lp.global_vector_fraction for lp in code.loops), default=0.0)
        parts["parallel"] *= 1.0 - 0.3 * gfv

    return apply


def parallelize_serial(fraction: float, speedup: float) -> Lever:
    """Hand-parallelize ``fraction`` of the serial remainder at
    ``speedup`` (e.g. QCD's parallel random-number generator)."""

    def apply(parts: Components, code: CodeProfile) -> None:
        moved = parts["serial"] * fraction
        parts["serial"] -= moved
        parts["parallel"] += moved / speedup

    return apply


def kernel_speedup(factor: float) -> Lever:
    def apply(parts: Components, code: CodeProfile) -> None:
        parts["parallel"] /= factor

    return apply


def restructure_barriers(saved_fraction: float) -> Lever:
    """FL052: one multicluster barrier plus four concurrency-bus
    sequences in place of a series of multicluster barriers, plus
    recurrence elimination — removes most of the scheduling component
    and part of the serial component."""

    def apply(parts: Components, code: CodeProfile) -> None:
        parts["scheduling"] *= 0.1
        parts["serial"] *= 1.0 - saved_fraction

    return apply


def cheap_scheduling() -> Lever:
    """Replace XDOALL scheduling with an SDOALL/CDOALL nest: the
    concurrency bus costs microseconds where the runtime library costs
    tens (Section 3.2)."""

    def apply(parts: Components, code: CodeProfile) -> None:
        parts["scheduling"] *= 3.4 / 120.0  # cdoall vs xdoall cost ratio

    return apply


def vm_overhead_ratio(data_mb: float = 20.0, passes: int = 8) -> float:
    """Ratio of distributed-data to shared-data VM overhead, computed
    through the VM substrate.

    Shared data: every cluster first-touches (and, with working sets
    far beyond TLB reach, keeps re-faulting on) all pages.  Distributed
    data: each cluster touches only its quarter.  The ratio is ~1/4 —
    "almost four times the number of page faults" in reverse.
    """
    cfg = VMConfig()
    pages = max(4, int(data_mb * 1024 * 1024 / cfg.page_bytes))

    def run(quarters: bool) -> float:
        vm = VirtualMemory(cfg, clusters=4)
        # The data is resident before the measured phase: populate every
        # PTE once (the one-time cost is common to both layouts).  The
        # steady-state cost is the TLB-miss fault traffic.
        vm.touch_range(0, pages * cfg.page_bytes, 0)
        for tlb in vm.tlbs:
            tlb.flush()
        cycles = 0.0
        span = pages // 4 if quarters else pages
        for _ in range(passes):
            for cluster in range(4):
                start = (cluster * span * cfg.page_bytes) if quarters else 0
                cycles += vm.touch_range(start, span * cfg.page_bytes, cluster)
                for tlb in vm.tlbs:
                    tlb.flush()  # data far exceeds TLB reach
        return cycles

    shared = run(quarters=False)
    distributed = run(quarters=True)
    return distributed / shared


def fix_vm_behaviour(vm_fraction: float = 0.5) -> Lever:
    """TRFD's distributed-memory rewrite ([MaEG92]).

    The improved multicluster TRFD was "spending close to 50% of the
    time in virtual memory activity" (``vm_fraction``); the
    distributed-memory version leaves each cluster faulting only on its
    own quarter of the data.  The saved share is computed from the VM
    substrate's shared-vs-distributed overhead ratio."""

    def apply(parts: Components, code: CodeProfile) -> None:
        ratio = vm_overhead_ratio()
        # VM activity threads through every phase touching the shared
        # data; the fix scales the whole execution accordingly.
        scale = 1.0 - vm_fraction * (1.0 - ratio)
        for key in parts:
            parts[key] *= scale

    return apply


@dataclass(frozen=True)
class HandOptimization:
    """One Table 4 (or Section 4.2 narrative) manual optimization."""

    code: str
    levers: Tuple[Lever, ...]
    paper_time: float
    paper_improvement: Optional[float]  # over automatable w/pref w/o sync
    description: str

    def apply(self, model: "Optional[CedarApplicationModel]" = None) -> "ExecutionResult":
        """Model the optimized execution time."""
        from repro.perf.model import CedarApplicationModel, ExecutionResult

        model = model or CedarApplicationModel()
        code = PERFECT_CODES[self.code]
        base = model.execute(
            code, AUTOMATABLE_PIPELINE, use_cedar_sync=False, use_prefetch=True
        )
        parts = dict(base.breakdown)
        for lever in self.levers:
            lever(parts, code)
        seconds = sum(parts.values())
        return ExecutionResult(
            code=self.code,
            version="manual",
            seconds=seconds,
            mflops=code.flops / seconds / 1e6,
            improvement=base.seconds / seconds,
            parallel_coverage=base.parallel_coverage,
            breakdown=parts,
        )


#: Table 4 rows (ARC2D 68s/2.1x, BDNA 70s/1.7x, TRFD 7.5s/2.8x,
#: QCD 21s/11.4x) plus the Section 4.2 narrative codes.
HANDOPT_MODELS: Dict[str, HandOptimization] = {
    "ARC2D": HandOptimization(
        code="ARC2D",
        levers=(eliminate_work(0.52), cluster_distribution()),
        paper_time=68.0,
        paper_improvement=2.1,
        description="eliminate unnecessary computation; distribute data "
        "into cluster memory [BrBo91]",
    ),
    "BDNA": HandOptimization(
        code="BDNA",
        levers=(io_speedup(20.0),),
        paper_time=70.0,
        paper_improvement=1.7,
        description="replace formatted with unformatted I/O",
    ),
    "TRFD": HandOptimization(
        code="TRFD",
        levers=(kernel_speedup(2.56), fix_vm_behaviour()),
        paper_time=7.5,
        paper_improvement=2.8,
        description="cache/vector-register kernels [AnGa93]; distributed-"
        "memory version removing multicluster TLB faults [MaEG92]",
    ),
    "QCD": HandOptimization(
        code="QCD",
        levers=(parallelize_serial(0.97, 30.0),),
        paper_time=21.0,
        paper_improvement=11.4,
        description="hand-coded parallel random number generator",
    ),
    "FLO52": HandOptimization(
        code="FLO52",
        levers=(restructure_barriers(0.5), eliminate_work(0.15)),
        paper_time=33.0,
        paper_improvement=None,
        description="single multicluster barrier + four concurrency-bus "
        "barrier sequences; recurrence elimination [GJWY93]",
    ),
    "DYFESM": HandOptimization(
        code="DYFESM",
        levers=(kernel_speedup(1.5), cheap_scheduling(), parallelize_serial(0.45, 8.0)),
        paper_time=31.0,
        paper_improvement=None,
        description="reshaped data structures, Xylem-assembler prefetch "
        "kernels, hierarchical SDOALL/CDOALL [YaGa93]",
    ),
    "SPICE": HandOptimization(
        code="SPICE",
        levers=(parallelize_serial(0.85, 10.0),),
        paper_time=26.0,
        paper_improvement=None,
        description="new approaches for all major phases",
    ),
}
