"""Sampled request tracing: determinism, exact reconciliation of the
traced population, and the packet trace-mark fast path."""

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import AwaitStream, GlobalLoad, GlobalStore, StartPrefetch
from repro.monitor.sampling import SampledSpanCollector
from repro.monitor.spans import PHASES, SpanCollector, validate_spans


def _programs(n_ces=4):
    def worker(port):
        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=64 * port)
            yield AwaitStream(stream)
            yield GlobalLoad(length=4, stride=1, address=1024 + 64 * port)
            yield GlobalStore(length=2, stride=1, address=2048 + 64 * port)

        return prog()

    return {port: worker(port) for port in range(n_ces)}


def _run(collector):
    machine = CedarMachine(CedarConfig())
    collector.attach(machine.bus)
    cycles = machine.run_programs(_programs())
    collector.detach()
    return cycles


class TestSampling:
    def test_every_one_matches_full_tracing(self):
        full = SpanCollector()
        _run(full)
        sampled = SampledSpanCollector(every=1)
        _run(sampled)
        assert sampled.completed == full.completed
        assert sampled.sampled_out == 0
        assert sorted(s.latency for s in sampled.complete_spans()) == sorted(
            s.latency for s in full.complete_spans()
        )

    def test_one_in_n_population_counts(self):
        full = SpanCollector()
        _run(full)
        births = full.completed + full.dropped + len(full.incomplete_spans())
        sampled = SampledSpanCollector(every=4)
        _run(sampled)
        traced = sampled.completed + len(sampled.incomplete_spans())
        assert traced + sampled.sampled_out == births
        assert traced == -(-births // 4)  # every 4th birth, starting at 0

    def test_selection_is_deterministic_across_runs(self):
        first = SampledSpanCollector(every=4)
        _run(first)
        second = SampledSpanCollector(every=4)
        _run(second)
        assert {s.request_id for s in first.complete_spans()} != set()
        # the *k-th born* reference is traced, so identical runs trace
        # identical reference sets (modulo the process-global id offset)
        firsts = sorted(s.birth for s in first.complete_spans())
        seconds = sorted(s.birth for s in second.complete_spans())
        assert firsts == seconds

    def test_traced_spans_reconcile_exactly(self):
        sampled = SampledSpanCollector(every=4)
        _run(sampled)
        spans = sampled.complete_spans()
        assert spans  # the sample is non-empty
        for span in spans:
            phases = span.phases()
            assert phases is not None
            assert set(phases) == set(PHASES)
            assert sum(phases.values()) == pytest.approx(
                span.latency, abs=1e-9
            )
            assert span.hops  # hop records were emitted for the sample

    def test_sampled_out_packets_build_no_hop_records(self):
        sampled = SampledSpanCollector(every=1_000_000)
        _run(sampled)
        # only the first-born reference is traced; every other packet's
        # trace mark is cleared at birth, so the net.span emission sites
        # skip the record build entirely and nothing reaches the buffer.
        assert sampled.completed + len(sampled.incomplete_spans()) == 1
        assert sampled.sampled_out > 0

    def test_spans_document_records_the_sampling(self):
        sampled = SampledSpanCollector(every=4)
        _run(sampled)
        doc = sampled.spans()
        assert doc["sampled_every"] == 4
        assert doc["sampled_out"] == sampled.sampled_out
        validate_spans(doc)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SampledSpanCollector(every=0)

    def test_sampling_does_not_change_cycles(self):
        bare = CedarMachine(CedarConfig()).run_programs(_programs())
        assert _run(SampledSpanCollector(every=4)) == bare
        assert _run(SampledSpanCollector(every=1)) == bare
