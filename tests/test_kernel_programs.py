"""Tests for the kernel trace programs (the Table 1/2 drivers)."""

import pytest

from repro.cluster.ce import (
    AwaitStream,
    Compute,
    ConsumeStream,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
)
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program


def collect_ops(shape_name, strips=2, prefetch=True):
    """Statically walk a program, answering StartPrefetch with a fake
    stream object so the generator keeps running."""

    class FakeStream:
        length = 0

    ops = []
    gen = kernel_program(KERNELS[shape_name], port=0, strips=strips, prefetch=prefetch)
    try:
        op = next(gen)
        while True:
            ops.append(op)
            value = FakeStream() if isinstance(op, StartPrefetch) else None
            op = gen.send(value)
    except StopIteration:
        pass
    return ops


class TestProgramStructure:
    def test_known_kernels(self):
        assert set(KERNELS) == {"VF", "TM", "CG", "RK"}

    @pytest.mark.parametrize("name,streams", [("VF", 1), ("TM", 3), ("CG", 5)])
    def test_prefetch_streams_per_strip(self, name, streams):
        ops = collect_ops(name, strips=2)
        starts = [o for o in ops if isinstance(o, StartPrefetch)]
        assert len(starts) == 2 * streams
        consumes = [o for o in ops if isinstance(o, ConsumeStream)]
        assert len(consumes) == 2 * streams

    def test_compiler_kernels_use_32_word_prefetches(self):
        for name in ("VF", "TM", "CG"):
            ops = collect_ops(name)
            for op in ops:
                if isinstance(op, StartPrefetch):
                    assert op.length == 32, name

    def test_rk_uses_256_word_blocks(self):
        ops = collect_ops("RK", strips=3)
        starts = [o for o in ops if isinstance(o, StartPrefetch)]
        assert all(o.length == 256 for o in starts)

    def test_rk_double_buffers(self):
        """RK keeps the previous block while the next is in flight."""
        ops = collect_ops("RK", strips=3)
        keeps = [o.keep_previous for o in ops if isinstance(o, StartPrefetch)]
        # first block is a plain fetch; subsequent ones keep the buffer
        assert keeps[0] is False
        assert all(keeps[1:])

    def test_rk_awaits_next_block_after_consuming(self):
        ops = collect_ops("RK", strips=2)
        kinds = [type(o).__name__ for o in ops]
        # fire, await, fire(keep), consume, ... await
        assert kinds.count("AwaitStream") >= 2
        assert kinds.index("ConsumeStream") > kinds.index("AwaitStream")

    def test_noprefetch_variant_uses_global_loads(self):
        for name in KERNELS:
            ops = collect_ops(name, prefetch=False)
            assert not any(isinstance(o, StartPrefetch) for o in ops)
            assert any(isinstance(o, GlobalLoad) for o in ops)

    def test_stores_present(self):
        for name in KERNELS:
            ops = collect_ops(name)
            assert any(isinstance(o, GlobalStore) for o in ops), name

    def test_register_register_work(self):
        """TM and CG carry register-register vector work ("which reduce
        the demand on the memory system"); VF carries none."""
        for name, has_regreg in (("TM", True), ("CG", True), ("VF", False)):
            shape = KERNELS[name]
            assert (shape.regreg_cycles > 0) is has_regreg


class TestProgramsOnTheMachine:
    def test_all_kernels_run_to_completion(self):
        config = CedarConfig()
        for name in KERNELS:
            machine = CedarMachine(config)
            t = machine.run_programs(
                {0: kernel_program(KERNELS[name], 0, strips=2, prefetch=True)}
            )
            assert t > 0

    def test_flops_accounting_consistency(self):
        shape = KERNELS["CG"]
        # 19 flops per point, 32 points per strip
        assert shape.flops == pytest.approx(19 * 32)

    def test_loaded_words(self):
        assert KERNELS["TM"].loaded_words == 96
        assert KERNELS["RK"].loaded_words == 260
