"""Tests for the IP (interactive processor) I/O path."""

import numpy as np
import pytest

from repro.cluster.ce import Compute, FileRead, FileWrite
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.xylem.filesystem import IOMode


def machine_with_unit(mode=IOMode.UNFORMATTED, unit="fort.10"):
    machine = CedarMachine(CedarConfig())
    machine.filesystem.open(unit, mode)
    return machine


class TestFileWrite:
    def test_write_does_not_stall_ce(self):
        machine = machine_with_unit()
        marks = {}

        def prog():
            yield FileWrite("fort.10", np.arange(1000.0))
            marks["after_write"] = machine.engine.now
            yield Compute(5)

        machine.run_programs({0: prog()})
        # the CE moved on immediately; the IP finished later
        assert marks["after_write"] == 0.0
        assert machine.engine.now > 5.0
        assert machine.filesystem.stats.writes == 1

    def test_records_land_in_order(self):
        machine = machine_with_unit()

        def prog():
            yield FileWrite("fort.10", [1.0])
            yield FileWrite("fort.10", [2.0])

        machine.run_programs({0: prog()})
        f = machine.filesystem.open("fort.10", IOMode.UNFORMATTED)
        np.testing.assert_array_equal(machine.filesystem.read("fort.10"), [1.0])
        np.testing.assert_array_equal(machine.filesystem.read("fort.10"), [2.0])

    def test_ip_request_counter(self):
        machine = machine_with_unit()

        def prog():
            for _ in range(3):
                yield FileWrite("fort.10", [0.0])

        machine.run_programs({0: prog()})
        assert machine.clusters[0].ip.requests_served == 3


class TestFileRead:
    def test_read_blocks_and_returns_record(self):
        machine = machine_with_unit()
        machine.filesystem.write("fort.10", [7.0, 8.0])
        machine.filesystem.rewind("fort.10")
        got = {}

        def prog():
            record = yield FileRead("fort.10")
            got["record"] = record
            got["time"] = machine.engine.now

        machine.run_programs({0: prog()})
        np.testing.assert_array_equal(got["record"], [7.0, 8.0])
        assert got["time"] > 0  # the CE waited for the IP

    def test_formatted_read_slower(self):
        def run(mode):
            machine = CedarMachine(CedarConfig())
            machine.filesystem.open("u", mode)
            machine.filesystem.write("u", np.zeros(5000))
            machine.filesystem.rewind("u")
            times = {}

            def prog():
                yield FileRead("u")
                times["t"] = machine.engine.now

            machine.run_programs({0: prog()})
            return times["t"]

        assert run(IOMode.FORMATTED) > 5 * run(IOMode.UNFORMATTED)


class TestOverlap:
    def test_io_overlaps_compute(self):
        """A big write plus compute should cost ~max, not ~sum."""
        machine = machine_with_unit()
        words = 20_000
        io_only = CedarMachine(CedarConfig())
        io_only.filesystem.open("fort.10", IOMode.UNFORMATTED)

        def io_prog():
            yield FileWrite("fort.10", np.zeros(words))

        io_only.run_programs({0: io_prog()})
        t_io = io_only.engine.now  # includes the drained IP service

        def overlapped():
            yield FileWrite("fort.10", np.zeros(words))
            yield Compute(t_io * 0.9)

        machine.run_programs({0: overlapped()})
        t_both = machine.engine.now
        assert t_io > 0
        assert t_both < t_io * 1.2  # far less than io + compute

    def test_per_cluster_ips_parallel(self):
        machine = CedarMachine(CedarConfig())
        for c in range(4):
            machine.filesystem.open(f"u{c}", IOMode.UNFORMATTED)

        def prog(cluster):
            yield FileWrite(f"u{cluster}", np.zeros(10_000))
            yield Compute(1)

        solo = CedarMachine(CedarConfig())
        solo.filesystem.open("u0", IOMode.UNFORMATTED)
        solo.run_programs({0: prog(0)})
        t_solo = solo.engine.now
        # four clusters each writing through their own IP, in parallel
        machine.run_programs({c * 8: prog(c) for c in range(4)})
        t_four = machine.engine.now
        assert t_four < t_solo * 1.5
