"""Multi-process store access: N processes hammering one store with
mixed read/write/verify traffic — no corruption, no lost entries, no
spurious recomputes — plus the runner-level guarantee that concurrent
``run-all --jobs N`` against one shared store is bit-identical to a
serial run."""

import json
import multiprocessing
import random

from repro.experiments.runner import run_all
from repro.store import ResultStore

N_PROCS = 4
N_KEYS = 8
OPS_PER_PROC = 40


def _keyspace():
    return [f"{i:02x}" + f"{i:02x}" * 31 for i in range(N_KEYS)]


def _payload(key):
    # deterministic payload per key, so every process writes the same
    # logical value and any served read is checkable
    return {"key": key, "body": key[::-1] * 4}


def _hammer(root, seed, fail_q):
    """One worker: a seeded mix of put / get / verify against the
    shared store.  Any violation is reported back, not raised (a raise
    in a child is invisible to asserts in the parent)."""
    import warnings

    rng = random.Random(seed)
    keys = _keyspace()
    store = ResultStore(root, lock_timeout_s=10.0)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any corruption warning fails
            for _ in range(OPS_PER_PROC):
                key = rng.choice(keys)
                op = rng.random()
                if op < 0.45:
                    store.put(key, _payload(key))
                elif op < 0.9:
                    got = store.get(key)
                    if got is not None and got != _payload(key):
                        fail_q.put(f"wrong payload served for {key[:8]}")
                else:
                    report = store.verify(repair=False)
                    bad = [
                        i for i in report.issues
                        if i.kind not in ("stale-lock",)  # never expected live
                    ]
                    if bad:
                        fail_q.put(f"verify issues under load: {bad}")
    except Exception as exc:  # noqa: BLE001 - ship it to the parent
        fail_q.put(f"worker {seed} raised {type(exc).__name__}: {exc}")


class TestMultiProcessHammer:
    def test_hammer_leaves_a_consistent_fully_served_store(self, tmp_path):
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        fail_q = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer, args=(tmp_path, seed, fail_q))
            for seed in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        failures = []
        while not fail_q.empty():
            failures.append(fail_q.get())
        assert failures == []
        assert all(p.exitcode == 0 for p in procs)

        store = ResultStore(tmp_path)
        # no corruption and no debris anywhere
        report = store.verify(repair=False)
        assert report.consistent, report.issues
        # no lost entries: every key every process wrote reads back
        # verified, with the one deterministic payload
        assert store.keys() == sorted(_keyspace())
        for key in _keyspace():
            assert store.get(key) == _payload(key)
        stats = store.stats()
        assert stats.entries == N_KEYS
        assert stats.temps == 0 and stats.locks == 0 and stats.quarantined == 0

    def test_no_spurious_recomputes_after_hammer(self, tmp_path):
        """A populated store serves every key as a verified hit — the
        hammer must not leave entries that read as misses."""
        store = ResultStore(tmp_path)
        for key in _keyspace():
            store.put(key, _payload(key))
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a recompute path would warn
            for key in _keyspace():
                assert store.get(key) == _payload(key)


class TestConcurrentRunAllBitIdentical:
    NAMES = ["topology", "overheads", "multiprogramming"]

    def test_jobs4_shared_store_matches_serial(self, tmp_path):
        serial = run_all(names=self.NAMES)
        shared = tmp_path / "shared-store"
        parallel = run_all(names=self.NAMES, jobs=4, cache_dir=shared)
        assert [r.output for r in parallel] == [r.output for r in serial]
        # the shared store is consistent and replays bit-identically
        assert ResultStore(shared).verify().consistent
        replay = run_all(names=self.NAMES, jobs=4, cache_dir=shared)
        assert all(r.cached for r in replay)
        assert [r.output for r in replay] == [r.output for r in serial]

    def test_two_caching_fleets_one_store(self, tmp_path):
        """Two parallel fleets racing into one store: same outputs, one
        consistent store, all second-fleet results served or recomputed
        identically."""
        shared = tmp_path / "store"
        a = run_all(names=self.NAMES, jobs=2, cache_dir=shared)
        b = run_all(names=self.NAMES, jobs=2, cache_dir=shared)
        assert [r.output for r in a] == [r.output for r in b]
        assert all(r.cached for r in b)
        report = ResultStore(shared).verify()
        assert report.consistent, report.issues
