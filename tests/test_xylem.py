"""Unit tests for the Xylem scheduler and runtime library."""

import pytest

from repro.core.config import RuntimeConfig
from repro.xylem.runtime import LoopKind, RuntimeLibrary
from repro.xylem.scheduler import GangScheduler, XylemProcess


class TestGangScheduler:
    def test_tasks_spread_over_clusters(self):
        sched = GangScheduler(clusters=4)
        proc = XylemProcess("p")
        tasks = [sched.schedule(proc.new_task(10.0)) for _ in range(4)]
        assert sorted(t.cluster for t in tasks) == [0, 1, 2, 3]
        assert all(t.start_time == 0.0 for t in tasks)

    def test_fifth_task_waits(self):
        sched = GangScheduler(clusters=4)
        proc = XylemProcess("p")
        for _ in range(4):
            sched.schedule(proc.new_task(10.0))
        fifth = sched.schedule(proc.new_task(5.0))
        assert fifth.start_time == 10.0
        assert proc.makespan == 15.0

    def test_affinity_sticks_to_cluster(self):
        """Successive SDOALLs schedule iterations on the same clusters
        so distributed cluster-memory data is reused."""
        sched = GangScheduler(clusters=4)
        proc = XylemProcess("p")
        first = sched.schedule(proc.new_task(1.0), affinity="block3")
        # fill other clusters with long tasks
        for _ in range(3):
            sched.schedule(proc.new_task(100.0))
        again = sched.schedule(proc.new_task(1.0), affinity="block3")
        assert again.cluster == first.cluster

    def test_barrier_aligns_clusters(self):
        sched = GangScheduler(clusters=2)
        proc = XylemProcess("p")
        sched.schedule(proc.new_task(3.0))
        sched.schedule(proc.new_task(7.0))
        t = sched.barrier()
        assert t == 7.0
        assert sched.free_times == [7.0, 7.0]

    def test_cannot_reschedule(self):
        sched = GangScheduler()
        proc = XylemProcess("p")
        task = sched.schedule(proc.new_task(1.0))
        with pytest.raises(ValueError):
            sched.schedule(task)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            XylemProcess("p").new_task(-1.0)


class TestRuntimeCosts:
    def test_xdoall_costs_match_paper(self):
        rt = RuntimeLibrary()
        cost = rt.loop_cost(LoopKind.XDOALL)
        assert cost.startup_us == 90.0
        assert cost.fetch_us == 30.0

    def test_cdoall_is_microseconds(self):
        rt = RuntimeLibrary()
        cost = rt.loop_cost(LoopKind.CDOALL)
        assert cost.startup_us <= 5.0   # "a few microseconds"

    def test_disabling_cedar_sync_inflates_fetch(self):
        with_sync = RuntimeLibrary(use_cedar_sync=True)
        without = RuntimeLibrary(use_cedar_sync=False)
        assert (
            without.loop_cost(LoopKind.XDOALL).fetch_us
            > with_sync.loop_cost(LoopKind.XDOALL).fetch_us
        )

    def test_cdoall_unaffected_by_sync_setting(self):
        """CDOALL self-scheduling uses the concurrency bus, not global
        memory synchronization."""
        without = RuntimeLibrary(use_cedar_sync=False)
        assert without.loop_cost(LoopKind.CDOALL).fetch_us == pytest.approx(
            RuntimeConfig().cdoall_fetch_us
        )

    def test_startup_cycles_conversion(self):
        rt = RuntimeLibrary(cycle_ns=170.0)
        # 90 us at 170 ns/cycle is about 529 cycles
        assert rt.startup_cycles(LoopKind.XDOALL) == pytest.approx(529.4, rel=1e-3)


class TestLoopScheduling:
    def test_static_schedule_balanced_blocks(self):
        rt = RuntimeLibrary()
        sched = rt.schedule(LoopKind.XDOALL, 10, 4, self_scheduled=False)
        sizes = sorted(len(a) for a in sched.assignment)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 3  # block partition

    def test_self_schedule_covers_all_iterations_once(self):
        rt = RuntimeLibrary()
        sched = rt.schedule(LoopKind.CDOALL, 100, 8)
        seen = sorted(i for a in sched.assignment for i in a)
        assert seen == list(range(100))

    def test_self_schedule_balances_nonuniform_work(self):
        rt = RuntimeLibrary()
        # one giant iteration followed by many small ones
        work = [1000.0] + [1.0] * 99
        sched = rt.schedule(LoopKind.CDOALL, 100, 4, work_us=work)
        giant_worker = next(
            w for w, its in enumerate(sched.assignment) if 0 in its
        )
        # the worker with the giant iteration gets few others
        assert len(sched.assignment[giant_worker]) < 10

    def test_makespan_static_vs_self_scheduled(self):
        rt = RuntimeLibrary()
        work = [100.0] * 4 + [1.0] * 96
        static = rt.schedule(LoopKind.CDOALL, 100, 4, self_scheduled=False)
        dynamic = rt.schedule(LoopKind.CDOALL, 100, 4, work_us=work)
        assert dynamic.makespan_us(work) <= static.makespan_us(work)

    def test_empty_loop_costs_startup_only(self):
        rt = RuntimeLibrary()
        sched = rt.schedule(LoopKind.XDOALL, 0, 8)
        assert sched.makespan_us([]) == pytest.approx(90.0)

    def test_loop_time_closed_form(self):
        rt = RuntimeLibrary()
        # 64 iterations on 32 workers: two waves of fetch+work
        t = rt.loop_time_us(LoopKind.XDOALL, 64, 32, work_us_per_iteration=10.0)
        assert t == pytest.approx(90.0 + 2 * (30.0 + 10.0))

    def test_validation(self):
        rt = RuntimeLibrary()
        with pytest.raises(ValueError):
            rt.schedule(LoopKind.XDOALL, -1, 4)
        with pytest.raises(ValueError):
            rt.schedule(LoopKind.XDOALL, 4, 0)
