"""Tests for the probe-to-histogrammer wiring."""

import pytest

from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.monitor.probes import PrefetchProbe


class TestProbeHistograms:
    def test_latency_histogram_from_probe(self):
        p = PrefetchProbe()
        for latency in (8.0, 9.0, 12.0):
            p.begin_block()
            p.record_issue(0, 0.0)
            p.record_arrival(0, latency)
        hist = p.latency_histogram(bins=64, hi=64.0)
        assert hist.samples == 3
        assert hist.mean() == pytest.approx(9.7, abs=1.0)

    def test_interarrival_histogram(self):
        p = PrefetchProbe()
        p.begin_block()
        for i in range(4):
            p.record_issue(i, float(i))
        for i, t in enumerate((8.0, 9.0, 10.5, 13.5)):
            p.record_arrival(i, t)
        hist = p.interarrival_histogram(bins=32, hi=16.0)
        assert hist.samples == 3  # three gaps

    def test_histogram_from_live_machine(self):
        machine = CedarMachine(CedarConfig(), monitor_port=0)

        def program():
            for strip in range(6):
                s = yield StartPrefetch(length=16, stride=1, address=strip * 64)
                yield AwaitStream(s)

        machine.run_programs({0: program()})
        hist = machine.probe.latency_histogram()
        assert hist.samples == 6
        # unloaded: every block at the 8-cycle minimum
        assert hist.mean() == pytest.approx(8.0, abs=0.6)


class TestZeroCostMonitoring:
    """The bus only observes: monitored and unmonitored runs are
    cycle-identical, and an unmonitored machine never runs a probe
    callback (its bus is quiescent)."""

    @staticmethod
    def _program():
        for strip in range(4):
            s = yield StartPrefetch(length=16, stride=1, address=strip * 64)
            yield AwaitStream(s)

    def test_unmonitored_machine_has_quiescent_bus(self):
        machine = CedarMachine(CedarConfig())
        assert machine.probe is None
        machine.run_programs({0: self._program()})
        assert machine.bus.quiescent()

    def test_monitoring_does_not_perturb_cycle_counts(self):
        plain = CedarMachine(CedarConfig())
        monitored = CedarMachine(CedarConfig(), monitor_port=0)
        finish_plain = plain.run_programs({0: self._program()})
        finish_monitored = monitored.run_programs({0: self._program()})
        assert finish_monitored == finish_plain
        assert monitored.probe.summary().blocks == 4

    def test_detached_probe_stops_observing(self):
        machine = CedarMachine(CedarConfig(), monitor_port=0)
        machine.run_programs({0: self._program()})
        blocks_before = machine.probe.summary().blocks
        machine.probe.detach(machine.bus)
        assert machine.bus.quiescent()
        machine.reset()
        machine.run_programs({0: self._program()})
        assert machine.probe.summary().blocks == blocks_before
