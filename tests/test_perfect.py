"""Tests for the Perfect Benchmarks layer: profiles, IR, forward model.

The round-trip tests here are the calibration contract: profiles are
derived from the paper's Table 3, and the forward model must recover
the published times (through the restructurer + runtime machinery, not
by echoing constants).
"""

import pytest

from repro.perf.model import CedarApplicationModel
from repro.perfect.handopt import HANDOPT_MODELS, vm_overhead_ratio
from repro.perfect.ir_builder import build_ir
from repro.perfect.profiles import PAPER_TABLE3, PERFECT_CODES, derive_profile
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE

ALL_CODES = sorted(PERFECT_CODES)
MODEL = CedarApplicationModel()


class TestProfiles:
    def test_thirteen_codes(self):
        assert len(PERFECT_CODES) == 13

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_weights_form_a_partition(self, name):
        code = PERFECT_CODES[name]
        total = code.serial_fraction + sum(lp.weight for lp in code.loops)
        assert total == pytest.approx(1.0, abs=1e-4)

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_sane_physical_parameters(self, name):
        code = PERFECT_CODES[name]
        assert code.serial_seconds > 0
        assert code.flops > 0
        for lp in code.loops:
            assert lp.invocations >= 1
            assert lp.trips >= 1
            assert 1.0 <= lp.vector_speedup <= 8.0
            assert 0.0 <= lp.global_vector_fraction <= 1.0

    def test_serial_time_consistency(self):
        """The two published products (time x improvement) agree."""
        for name, ref in PAPER_TABLE3.items():
            if ref.auto_time is None:
                continue
            kap_serial = ref.kap_time * ref.kap_improvement
            auto_serial = ref.auto_time * ref.auto_improvement
            assert kap_serial == pytest.approx(auto_serial, rel=0.12), name

    def test_derivation_is_deterministic(self):
        a = derive_profile("MDG", PAPER_TABLE3["MDG"])
        b = derive_profile("MDG", PAPER_TABLE3["MDG"])
        assert a == b


class TestIRBuilder:
    @pytest.mark.parametrize("name", ALL_CODES)
    def test_programs_validate(self, name):
        program = build_ir(PERFECT_CODES[name])
        program.validate_weights()

    @pytest.mark.parametrize("name", [n for n in ALL_CODES if n != "SPICE"])
    def test_advanced_loop_blocked_under_kap(self, name):
        """The loop carrying the code's advanced obstacle must be serial
        under KAP and parallel under the automatable pipeline."""
        code = PERFECT_CODES[name]
        program = build_ir(code)
        kap = KAP_PIPELINE.restructure(program)
        auto = AUTOMATABLE_PIPELINE.restructure(program)
        assert not kap.verdict_for("advanced_loops").parallel
        assert auto.verdict_for("advanced_loops").parallel

    def test_coverage_ordering(self):
        for name in ALL_CODES:
            program = build_ir(PERFECT_CODES[name])
            kap = KAP_PIPELINE.restructure(program)
            auto = AUTOMATABLE_PIPELINE.restructure(program)
            assert auto.parallel_coverage >= kap.parallel_coverage


class TestForwardModel:
    """The calibration contract: model vs paper, all four versions."""

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_kap_times(self, name):
        ref = PAPER_TABLE3[name]
        got = MODEL.execute(PERFECT_CODES[name], KAP_PIPELINE)
        assert got.seconds == pytest.approx(ref.kap_time, rel=0.10), name

    @pytest.mark.parametrize("name", [n for n in ALL_CODES if n != "SPICE"])
    def test_automatable_times(self, name):
        ref = PAPER_TABLE3[name]
        got = MODEL.execute(PERFECT_CODES[name], AUTOMATABLE_PIPELINE)
        assert got.seconds == pytest.approx(ref.auto_time, rel=0.10), name

    @pytest.mark.parametrize("name", [n for n in ALL_CODES if n != "SPICE"])
    def test_no_sync_times(self, name):
        ref = PAPER_TABLE3[name]
        target = ref.auto_time * (1 + ref.no_sync_slowdown)
        got = MODEL.execute(
            PERFECT_CODES[name], AUTOMATABLE_PIPELINE, use_cedar_sync=False
        )
        assert got.seconds == pytest.approx(target, rel=0.10), name

    @pytest.mark.parametrize("name", [n for n in ALL_CODES if n != "SPICE"])
    def test_no_prefetch_times(self, name):
        ref = PAPER_TABLE3[name]
        target = ref.auto_time * (1 + ref.no_sync_slowdown) * (
            1 + ref.no_prefetch_slowdown
        )
        got = MODEL.execute(
            PERFECT_CODES[name],
            AUTOMATABLE_PIPELINE,
            use_cedar_sync=False,
            use_prefetch=False,
        )
        assert got.seconds == pytest.approx(target, rel=0.12), name

    @pytest.mark.parametrize("name", [n for n in ALL_CODES if n != "SPICE"])
    def test_mflops(self, name):
        ref = PAPER_TABLE3[name]
        got = MODEL.execute(PERFECT_CODES[name], AUTOMATABLE_PIPELINE)
        assert got.mflops == pytest.approx(ref.mflops, rel=0.10), name

    def test_ablations_only_slow_things_down(self):
        for name in ALL_CODES:
            code = PERFECT_CODES[name]
            base = MODEL.execute(code, AUTOMATABLE_PIPELINE)
            nosync = MODEL.execute(code, AUTOMATABLE_PIPELINE, use_cedar_sync=False)
            nopref = MODEL.execute(
                code, AUTOMATABLE_PIPELINE, use_cedar_sync=False, use_prefetch=False
            )
            assert nosync.seconds >= base.seconds - 1e-9
            assert nopref.seconds >= nosync.seconds - 1e-9

    def test_breakdown_sums_to_total(self):
        got = MODEL.execute(PERFECT_CODES["MDG"], AUTOMATABLE_PIPELINE)
        assert sum(got.breakdown.values()) == pytest.approx(got.seconds)

    def test_scalar_dominated_code_ignores_prefetch(self):
        base = MODEL.execute(PERFECT_CODES["TRACK"], AUTOMATABLE_PIPELINE)
        nopref = MODEL.execute(
            PERFECT_CODES["TRACK"], AUTOMATABLE_PIPELINE, use_prefetch=False
        )
        assert nopref.seconds == pytest.approx(base.seconds)


class TestHandOptimizations:
    @pytest.mark.parametrize("name", sorted(HANDOPT_MODELS))
    def test_times_near_paper(self, name):
        opt = HANDOPT_MODELS[name]
        got = opt.apply()
        assert got.seconds == pytest.approx(opt.paper_time, rel=0.35), name

    def test_table4_rows_present(self):
        for name in ("ARC2D", "BDNA", "TRFD", "QCD"):
            assert name in HANDOPT_MODELS

    def test_all_optimizations_improve(self):
        for name, opt in HANDOPT_MODELS.items():
            got = opt.apply()
            assert got.improvement > 1.0, name

    def test_vm_ratio_is_about_one_quarter(self):
        """Distributed data leaves each cluster faulting on a quarter of
        the pages — 'almost four times the number of page faults' in
        reverse."""
        ratio = vm_overhead_ratio(data_mb=4.0, passes=3)
        assert 0.2 <= ratio <= 0.35
