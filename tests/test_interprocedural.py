"""Tests for interprocedural call-site resolution."""

import pytest

from repro.restructurer.interprocedural import SubroutineSummary, SummaryRegistry
from repro.restructurer.ir import CallSite, Loop, Statement, read, write
from repro.restructurer.parser import parse_loop
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


def loop_with_call(call, rhs=None):
    st = Statement(
        lhs=write("y", 1, 0),
        rhs=rhs if rhs is not None else [read("x", 1, 0)],
        calls=[call],
    )
    return Loop(var="i", trips=64, body=[st], weight=1.0)


class TestSummaries:
    def test_pure_summary_clearable(self):
        s = SubroutineSummary("F", reads=(0,), writes=())
        assert s.pure_on_formals and s.clearable()

    def test_common_blocks(self):
        s = SubroutineSummary("F", common_touched=("STATE",))
        assert not s.clearable()

    def test_scratch_save_clearable(self):
        s = SubroutineSummary("F", has_save=True, save_is_scratch=True)
        assert s.clearable()

    def test_live_save_blocks(self):
        s = SubroutineSummary("F", has_save=True, save_is_scratch=False)
        assert not s.clearable()


class TestResolution:
    def test_unknown_callee_left_alone(self):
        registry = SummaryRegistry()
        loop = loop_with_call(CallSite("MYSTERY"))
        assert registry.resolve_loop(loop) == []
        assert not AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_pure_callee_cleared(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("WORK", reads=(0,), writes=()))
        loop = loop_with_call(CallSite("WORK"))
        assert registry.resolve_loop(loop) == ["WORK"]
        assert AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel
        # even KAP accepts it: the call is now known side-effect-free
        loop.reset_analysis()
        assert KAP_PIPELINE.restructure_loop(loop).parallel

    def test_writer_with_disjoint_actuals_cleared(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("FILL", writes=(0,)))
        loop = loop_with_call(CallSite("FILL"), rhs=[read("out", 1, 0)])
        assert registry.resolve_loop(loop) == ["FILL"]

    def test_writer_hitting_one_location_blocks(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("ACCUM", writes=(0,)))
        # actual argument is the same scalar every iteration
        loop = loop_with_call(CallSite("ACCUM"), rhs=[read("total")])
        assert registry.resolve_loop(loop) == []

    def test_common_toucher_blocks(self):
        registry = SummaryRegistry()
        registry.register(
            SubroutineSummary("GLOB", writes=(0,), common_touched=("CTX",))
        )
        loop = loop_with_call(CallSite("GLOB"), rhs=[read("out", 1, 0)])
        assert registry.resolve_loop(loop) == []

    def test_scratch_save_end_to_end(self):
        """The paper's SAVE story with a summary: a routine with
        privatizable SAVE scratch is cleared for both pipelines."""
        registry = SummaryRegistry()
        registry.register(
            SubroutineSummary(
                "KERNEL_SAVE", reads=(0,), writes=(),
                has_save=True, save_is_scratch=True,
            )
        )
        loop = parse_loop(
            "DO I = 1, 100\nCALL KERNEL_SAVE(X(I))\nY(I) = X(I)\nEND DO"
        )
        assert registry.resolve_loop(loop) == ["KERNEL_SAVE"]
        assert AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_counters(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("A"))
        registry.register(SubroutineSummary("B", common_touched=("G",)))
        loop = Loop(
            var="i",
            trips=8,
            weight=1.0,
            body=[
                Statement(lhs=write("y", 1, 0), rhs=[], calls=[CallSite("A")]),
                Statement(lhs=write("z", 1, 0), rhs=[], calls=[CallSite("B")]),
            ],
        )
        registry.resolve_loop(loop)
        assert registry.resolved_calls == 2
        assert registry.cleared_calls == 1

    def test_program_resolution(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("PUREFN"))
        from repro.restructurer.ir import Program

        loop = loop_with_call(CallSite("PUREFN"))
        loop.label = "main"
        program = Program("demo", loops=[loop], serial_fraction=0.0)
        result = registry.resolve_program(program)
        assert result == {"main": ["PUREFN"]}

    def test_case_insensitive_lookup(self):
        registry = SummaryRegistry()
        registry.register(SubroutineSummary("MixedCase"))
        assert registry.lookup("mixedcase") is not None
