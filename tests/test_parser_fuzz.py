"""Property-based fuzzing of the Fortran parser + pipelines."""

from hypothesis import given, settings, strategies as st

from repro.restructurer.parser import parse_loop
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE

arrays = st.sampled_from(["X", "Y", "Z", "W", "A"])
scalars = st.sampled_from(["S", "T", "K"])
offsets = st.integers(min_value=-3, max_value=3)


@st.composite
def statements(draw):
    form = draw(st.integers(min_value=0, max_value=5))
    a = draw(arrays)
    b = draw(arrays)
    s = draw(scalars)
    d1 = draw(offsets)
    d2 = draw(offsets)

    def sub(d):
        if d == 0:
            return "I"
        return f"I{'+' if d > 0 else '-'}{abs(d)}"

    if form == 0:
        return f"{a}({sub(d1)}) = {b}({sub(d2)}) * 2.0"
    if form == 1:
        return f"{s} = {b}({sub(d1)})"
    if form == 2:
        return f"{s} = {s} + {b}({sub(d1)})"
    if form == 3:
        return f"{a}({sub(d1)}) = {s} + 1.0"
    if form == 4:
        return f"{a}(IDX(I)) = {b}({sub(d1)})"
    return f"{s} = {s} + 1"


@st.composite
def loops(draw):
    body = draw(st.lists(statements(), min_size=1, max_size=5))
    trips = draw(st.integers(min_value=2, max_value=500))
    return "DO I = 1, " + str(trips) + "\n" + "\n".join(body) + "\nEND DO"


class TestParserFuzz:
    @given(source=loops())
    @settings(max_examples=80, deadline=None)
    def test_generated_loops_parse_and_analyze(self, source):
        loop = parse_loop(source)
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel in (True, False)

    @given(source=loops())
    @settings(max_examples=60, deadline=None)
    def test_pipeline_monotonicity_through_the_parser(self, source):
        """Anything KAP parallelizes, the automatable pipeline must too."""
        loop = parse_loop(source)
        kap = KAP_PIPELINE.restructure_loop(loop)
        loop.reset_analysis()
        auto = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        if kap.parallel:
            assert auto.parallel

    @given(source=loops())
    @settings(max_examples=40, deadline=None)
    def test_reset_makes_analysis_repeatable(self, source):
        loop = parse_loop(source)
        first = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        loop.reset_analysis()
        second = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert first.parallel == second.parallel
        assert set(first.transforms) == set(second.transforms)

    @given(source=loops())
    @settings(max_examples=40, deadline=None)
    def test_self_recurrence_always_blocks(self, source):
        """Appending a true recurrence makes any loop serial."""
        body_with_recurrence = source.replace(
            "\nEND DO", "\nQ(I) = Q(I-1) + 1.0\nEND DO"
        )
        loop = parse_loop(body_with_recurrence)
        assert not AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel