"""Tests for the software coherence manager."""

import numpy as np
import pytest

from repro.fortran import CedarFortran
from repro.fortran.coherence import CoherenceError, CoherenceManager, CopyState


@pytest.fixture
def cf():
    return CedarFortran()


@pytest.fixture
def mgr():
    return CoherenceManager(clusters=4)


def global_array(cf, n=16, name="G"):
    return cf.global_array(np.arange(float(n)), name=name)


class TestCopyIn:
    def test_copy_materializes_cluster_array(self, cf, mgr):
        g = global_array(cf)
        local = mgr.copy_to_cluster(g, cluster=2)
        assert local.home_cluster == 2
        np.testing.assert_array_equal(local.data, g.data)
        assert mgr.state_of(g, 2) is CopyState.CLEAN

    def test_copies_are_independent_storage(self, cf, mgr):
        g = global_array(cf)
        local = mgr.copy_to_cluster(g, 0)
        local.data[0] = 99.0
        assert g.data[0] == 0.0

    def test_multiple_clean_readers_allowed(self, cf, mgr):
        g = global_array(cf)
        for c in range(4):
            mgr.copy_to_cluster(g, c)
        assert mgr.holders(g) == [0, 1, 2, 3]

    def test_only_global_arrays_tracked(self, cf, mgr):
        local = cf.cluster_array(np.zeros(4))
        with pytest.raises(ValueError):
            mgr.copy_to_cluster(local, 0)

    def test_bad_cluster(self, cf, mgr):
        with pytest.raises(ValueError):
            mgr.copy_to_cluster(global_array(cf), 7)


class TestWriteDiscipline:
    def test_single_writer_allowed(self, cf, mgr):
        g = global_array(cf)
        local = mgr.copy_to_cluster(g, 0)
        local.data[:] = 7.0
        mgr.mark_written(g, 0)
        assert mgr.state_of(g, 0) is CopyState.DIRTY

    def test_two_dirty_writers_rejected(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        mgr.mark_written(g, 0)
        with pytest.raises(CoherenceError):
            mgr.mark_written(g, 1)

    def test_write_back_publishes_and_stales_others(self, cf, mgr):
        g = global_array(cf)
        a = mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        a.data[:] = 5.0
        mgr.mark_written(g, 0)
        mgr.write_back(g, 0)
        np.testing.assert_array_equal(g.data, 5.0)
        assert mgr.state_of(g, 0) is CopyState.CLEAN
        assert mgr.state_of(g, 1) is CopyState.STALE

    def test_stale_read_rejected(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        mgr.mark_written(g, 0)
        mgr.write_back(g, 0)
        with pytest.raises(CoherenceError):
            mgr.check_read(g, 1)
        mgr.check_read(g, 0)  # the writer's copy stays valid

    def test_recopy_heals_staleness(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        mgr.mark_written(g, 0)
        mgr.write_back(g, 0)
        fresh = mgr.copy_to_cluster(g, 1)
        np.testing.assert_array_equal(fresh.data, g.data)
        assert mgr.state_of(g, 1) is CopyState.CLEAN

    def test_stale_write_rejected(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        mgr.mark_written(g, 0)
        mgr.write_back(g, 0)
        with pytest.raises(CoherenceError):
            mgr.mark_written(g, 1)

    def test_copy_while_dirty_rejected(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.mark_written(g, 0)
        with pytest.raises(CoherenceError):
            mgr.copy_to_cluster(g, 1)

    def test_write_back_without_copy_rejected(self, cf, mgr):
        g = global_array(cf)
        with pytest.raises(CoherenceError):
            mgr.write_back(g, 0)


class TestGlobalWrites:
    def test_global_write_invalidates_copies(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.write_global(g)
        assert mgr.state_of(g, 0) is CopyState.STALE
        assert mgr.stats.invalidations == 1

    def test_global_write_with_dirty_copy_rejected(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.mark_written(g, 0)
        with pytest.raises(CoherenceError):
            mgr.write_global(g)

    def test_invalidate_all(self, cf, mgr):
        g = global_array(cf)
        mgr.copy_to_cluster(g, 0)
        mgr.copy_to_cluster(g, 1)
        mgr.invalidate_all(g)
        assert mgr.holders(g) == []


class TestDistribution:
    def test_distribute_partitions_exactly(self, cf, mgr):
        g = global_array(cf, n=100)
        pieces = mgr.distribute(g, 4)
        assert [c for c, _, _ in pieces] == [0, 1, 2, 3]
        rebuilt = np.concatenate([local.data for _, local, _ in pieces])
        np.testing.assert_array_equal(rebuilt, g.data)

    def test_distribute_slices_cover(self, cf, mgr):
        g = global_array(cf, n=37)
        pieces = mgr.distribute(g, 3)
        covered = sum(sl.stop - sl.start for _, _, sl in pieces)
        assert covered == 37

    def test_distribute_validation(self, cf, mgr):
        g = global_array(cf)
        with pytest.raises(ValueError):
            mgr.distribute(g, 0)
        with pytest.raises(ValueError):
            mgr.distribute(g, 9)

    def test_words_moved_accounted(self, cf, mgr):
        g = global_array(cf, n=64)
        mgr.copy_to_cluster(g, 0)
        mgr.write_back(g, 0)
        assert mgr.stats.words_moved == 128


class TestDistributedComputePattern:
    def test_sdoall_style_partitioned_update(self, cf, mgr):
        """The Section 3.2 localization pattern end to end: distribute,
        update each piece on its cluster, write back, verify."""
        g = cf.global_array(np.arange(32.0), name="field")
        pieces = mgr.distribute(g, 4)
        for cluster, local, sl in pieces:
            local.data[:] = local.data * 2.0  # cluster-local compute
            g.data.reshape(-1)[sl] = local.data  # explicit move back
        np.testing.assert_array_equal(g.data, np.arange(32.0) * 2.0)
