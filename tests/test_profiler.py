"""Host-time hotspot attribution: the cProfile harness behind
``python -m repro profile``.

The profiler answers a different question from every other monitor
tool: not where *simulated* time goes, but where *wall-clock* time goes
inside the simulator itself — which subsystem's frames bound the
events/sec plateau.
"""

import json

import pytest

from repro.monitor.profiler import (
    PROFILE_VERSION,
    HostProfile,
    frame_subsystem,
    profile_call,
    render_profile,
)


class TestFrameSubsystem:
    def test_known_subsystem_paths(self):
        assert frame_subsystem("/x/src/repro/core/engine.py") == "engine"
        assert frame_subsystem("src/repro/core/context.py") == "core"
        assert frame_subsystem("src/repro/network/resource.py") == "network"
        assert frame_subsystem("src/repro/gmemory/module.py") == "gmemory"
        assert frame_subsystem("src/repro/monitor/timeline.py") == "monitor"

    def test_engine_beats_the_broader_core_match(self):
        # ordered patterns: the engine file is "engine", not "core"
        assert frame_subsystem("repro/core/engine.py") == "engine"

    def test_windows_separators_normalized(self):
        assert frame_subsystem("src\\repro\\core\\engine.py") == "engine"

    def test_foreign_frames_fall_through_to_other(self):
        assert frame_subsystem("/usr/lib/python3.11/heapq.py") == "other"
        assert frame_subsystem("~") == "other"  # cProfile builtins


class TestProfileCall:
    def _profiled_run(self):
        from repro.core.config import CedarConfig
        from repro.core.machine import CedarMachine
        from repro.kernels.programs import KERNELS, kernel_program

        def run():
            machine = CedarMachine(CedarConfig())
            programs = {
                port: kernel_program(KERNELS["CG"], port, 2, prefetch=True)
                for port in range(2)
            }
            return machine.run_programs(programs)

        return profile_call(run, experiment="unit", top=5)

    def test_attributes_wall_time_to_subsystems(self):
        profile, cycles = self._profiled_run()
        assert cycles > 0  # the wrapped callable's result passes through
        assert profile.experiment == "unit"
        assert profile.wall_seconds > 0 and profile.total_calls > 0
        # a kernel run must spend self-time in the simulation core
        assert set(profile.subsystems) & {"engine", "network", "core"}
        shares = profile.subsystem_shares()
        assert all(0.0 <= s <= 1.0 for s in shares.values())
        assert sum(shares.values()) <= 1.0 + 1e-9

    def test_frames_are_ranked_and_capped(self):
        profile, _ = self._profiled_run()
        assert 0 < len(profile.frames) <= 5
        self_times = [f["self_seconds"] for f in profile.frames]
        assert self_times == sorted(self_times, reverse=True)
        assert all(
            {"file", "line", "function", "subsystem"} <= set(f)
            for f in profile.frames
        )

    def test_document_round_trips_through_json(self):
        profile, _ = self._profiled_run()
        doc = json.loads(json.dumps(profile.to_dict()))
        assert doc["version"] == PROFILE_VERSION
        assert doc["experiment"] == "unit"
        assert doc["subsystem_shares"]

    def test_render_names_the_hot_subsystem(self):
        profile, _ = self._profiled_run()
        text = render_profile(profile)
        assert "host profile" in text
        assert "hottest frames" in text
        hottest = max(
            profile.subsystems, key=lambda k: profile.subsystems[k]
        )
        assert hottest in text


class TestHostProfileEdgeCases:
    def test_zero_wall_profile_has_zero_shares(self):
        profile = HostProfile(
            experiment="empty",
            wall_seconds=0.0,
            total_calls=0,
            subsystems={},
            frames=[],
        )
        assert profile.subsystem_shares() == {}
        assert profile.to_dict()["wall_seconds"] == 0.0

    def test_trivial_callable_still_profiles(self):
        profile, result = profile_call(lambda: 41 + 1, experiment="t")
        assert result == 42
        assert profile.total_calls >= 1
