"""Tests for problem-size scaling of the Perfect workloads."""

import pytest

from repro.metrics.bands import Band
from repro.perfect.profiles import PERFECT_CODES
from repro.perfect.sizing import (
    run_size_scaling,
    scale_problem,
    size_band,
    size_stability,
)


class TestScaleProblem:
    def test_scales_serial_time_flops_and_trips(self):
        base = PERFECT_CODES["MDG"]
        scaled = scale_problem(base, 2.0)
        assert scaled.serial_seconds == pytest.approx(2 * base.serial_seconds)
        assert scaled.flops == pytest.approx(2 * base.flops)
        for lp_base, lp_scaled in zip(base.loops, scaled.loops):
            assert lp_scaled.trips == 2 * lp_base.trips

    def test_preserves_weights(self):
        scaled = scale_problem(PERFECT_CODES["MDG"], 0.25)
        total = scaled.serial_fraction + sum(lp.weight for lp in scaled.loops)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_problem(PERFECT_CODES["MDG"], 0.0)

    def test_tiny_factor_floors_trips(self):
        scaled = scale_problem(PERFECT_CODES["MDG"], 0.001)
        assert all(lp.trips >= 1 for lp in scaled.loops)


class TestSizeScalingStudy:
    def test_speedup_grows_with_problem_size(self):
        """Bigger problems amortize loop startup: speedup is
        non-decreasing in the size factor (for the parallel codes)."""
        study = run_size_scaling()
        for name in ("MDG", "TRFD", "OCEAN"):
            values = [study[name][f] for f in sorted(study[name])]
            assert all(b >= a - 1e-6 for a, b in zip(values, values[1:])), name

    def test_trfd_high_at_full_size_degrades_below(self):
        """The application-level version of the Section 4.4 CG story:
        high band at full size and above, a lower band once the problem
        shrinks enough to starve the machine of iterations."""
        for factor in (1.0, 2.0, 4.0):
            assert size_band("TRFD", factor) is Band.HIGH
        assert size_band("TRFD", 0.125) is not Band.HIGH
        assert size_band("TRFD", 0.125) is not Band.UNACCEPTABLE

    def test_small_problems_lose_a_band(self):
        """At 1/8 size, some intermediate codes hold their band but
        none gains one — and the scheduling-bound ones degrade."""
        study = run_size_scaling()
        for name in PERFECT_CODES:
            assert study[name][0.125] <= study[name][4.0] + 1e-6

    def test_size_stability_metric(self):
        """Over the *large-problem* range (f >= 1) the parallel codes
        meet PPT4's factor-of-2 size-stability criterion; over the full
        range (1/8 .. 4x) they do not — small problems starve the
        machine of iterations, exactly the CG study's lesson."""
        study = run_size_scaling()
        for name in ("TRFD", "MG3D", "MDG"):
            large = [s for f, s in study[name].items() if f >= 1.0]
            assert min(large) / max(large) > 0.5, name
        assert size_stability("TRFD") < 0.5  # full range: unstable

    def test_serial_codes_indifferent_to_size(self):
        study = run_size_scaling()
        values = list(study["SPICE"].values())
        assert max(values) / min(values) < 1.1
