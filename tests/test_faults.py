"""Fault-injection subsystem: plans, determinism, degradation, routing.

The contract under test (docs/ROBUSTNESS.md):

* a :class:`FaultPlan` is validated, seeded *data* hashed into the
  config, and an all-zero plan builds no injector at all;
* the same plan on the same machine reproduces the same faults and the
  same cycle counts, run after run and reset after reset;
* faults only ever slow the machine down — they are stalls and
  reroutes, never lost traffic — so every program still completes;
* down ports trigger degraded-mode escape routing through the reverse
  fabric, visible in the ``rerouted`` counter and ``fault.*`` metrics.
"""

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import SyncInstruction
from repro.experiments.kernels_sim import _run
from repro.faults import FaultInjector, FaultPlan
from repro.kernels.programs import KERNELS, kernel_program
from repro.monitor.metrics import MetricsRegistry
from repro.monitor.monitors import attach_standard_monitors, detach_monitors


def run_kernel(plan=None, kernel="CG", n_ces=2, strips=2):
    """Cycle count + rates of one small kernel run (fresh machine)."""
    config = CedarConfig() if plan is None else CedarConfig(faults=plan)
    return _run(config, kernel, n_ces, True, strips)


def build_and_run(plan, kernel="CG", n_ces=2, strips=2):
    """Like :func:`run_kernel` but keeps the machine for inspection."""
    machine = CedarMachine(CedarConfig(faults=plan), monitor_port=0)
    shape = KERNELS[kernel]
    programs = {
        port: kernel_program(shape, port, strips, prefetch=True)
        for port in range(n_ces)
    }
    cycles = machine.run_programs(programs)
    return machine, cycles


class TestFaultPlan:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(switch_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(ecc_rate=-0.1)

    def test_backoff_must_be_positive_and_non_shrinking(self):
        with pytest.raises(ValueError):
            FaultPlan(backoff_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(backoff_base_cycles=0.0)

    def test_inert_plan_is_disabled_regardless_of_seed(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(seed=99).enabled
        assert FaultPlan(ecc_rate=0.01).enabled

    def test_uniform_sets_every_fault_class(self):
        plan = FaultPlan.uniform(0.02, seed=7)
        assert plan.switch_fail_rate == plan.ecc_rate == 0.02
        assert plan.sync_timeout_rate == 0.02
        assert plan.port_down_rate == pytest.approx(0.002)
        assert plan.with_seed(8) == FaultPlan.uniform(0.02, seed=8)

    def test_plan_is_part_of_the_config_hash(self):
        assert (
            CedarConfig().stable_hash()
            != CedarConfig(faults=FaultPlan.uniform(0.02)).stable_hash()
        )
        # ... but the seed alone matters too: cached results keyed by
        # config must distinguish different fault schedules.
        assert (
            CedarConfig(faults=FaultPlan.uniform(0.02, seed=1)).stable_hash()
            != CedarConfig(faults=FaultPlan.uniform(0.02, seed=2)).stable_hash()
        )


class TestAssembly:
    def test_inert_plan_builds_no_injector(self):
        machine = CedarMachine(CedarConfig())
        assert machine.faults is None

    def test_enabled_plan_arms_every_site(self):
        machine = CedarMachine(CedarConfig(faults=FaultPlan.uniform(0.01)))
        injector = machine.faults
        assert injector is not None
        description = injector.describe()
        assert description["sites"] > 0
        # the default dual-fabric machine gets an escape route per fabric
        assert description["escape_routes"] == 2

    def test_explicit_install_on_assembled_machine(self):
        machine = CedarMachine(CedarConfig())
        injector = FaultInjector(FaultPlan(ecc_rate=0.5, seed=3)).install(machine)
        assert machine.ctx.component("faults") is injector
        shape = KERNELS["CG"]
        machine.run_programs(
            {0: kernel_program(shape, 0, 2, prefetch=True)}
        )
        assert injector.ecc_retries > 0


class TestDeterminism:
    def test_same_seed_reproduces_cycles_exactly(self):
        plan = FaultPlan.uniform(0.02, seed=7)
        assert run_kernel(plan) == run_kernel(plan)

    def test_faults_slow_the_machine_down_but_never_lose_work(self):
        baseline = run_kernel()
        faulted = run_kernel(FaultPlan.uniform(0.02, seed=7))
        # the kernel completed (run_programs raises otherwise) and took
        # strictly longer: faults are stalls, not lost traffic.
        assert faulted.cycles > baseline.cycles

    def test_reset_replays_the_same_fault_schedule(self):
        plan = FaultPlan.uniform(0.02, seed=11)
        machine, first = build_and_run(plan)
        transients = machine.faults.transients
        machine.reset()
        assert machine.faults.stats()["transients"] == 0
        shape = KERNELS["CG"]
        second = machine.run_programs(
            {port: kernel_program(shape, port, 2, prefetch=True) for port in range(2)}
        )
        assert second == first
        assert machine.faults.transients == transients


class TestCountersAndSignals:
    def test_injector_counters_mirror_memory_stats(self):
        machine, _cycles = build_and_run(FaultPlan(ecc_rate=0.2, seed=5))
        injector = machine.faults
        assert injector.ecc_retries > 0
        assert machine.gmem.stats()["ecc_retries"] == injector.ecc_retries

    def test_sync_timeouts_fire_on_sync_traffic(self):
        config = CedarConfig(faults=FaultPlan(sync_timeout_rate=0.5, seed=1))
        machine = CedarMachine(config)
        modules = config.global_memory.modules

        def program(port):
            for i in range(16):
                yield SyncInstruction(address=port + i * (modules + 1))

        machine.run_programs({port: program(port) for port in range(4)})
        assert machine.faults.sync_timeouts > 0
        assert (
            machine.gmem.stats()["sync_timeouts"] == machine.faults.sync_timeouts
        )

    def test_fault_monitor_counts_match_the_injector(self):
        registry = MetricsRegistry()
        machine = CedarMachine(
            CedarConfig(faults=FaultPlan.uniform(0.05, seed=13)), monitor_port=0
        )
        monitors = attach_standard_monitors(machine.bus, registry)
        try:
            shape = KERNELS["CG"]
            machine.run_programs(
                {
                    port: kernel_program(shape, port, 2, prefetch=True)
                    for port in range(2)
                }
            )
        finally:
            detach_monitors(monitors)
        injector = machine.faults
        assert registry.counter("fault.transients").value == injector.transients
        assert registry.counter("fault.ecc_retries").value == injector.ecc_retries


class TestEscapeRouting:
    def test_down_ports_reroute_new_injections(self):
        # outages frequent and long enough that some injection's route
        # crosses a down port while it is still down.
        plan = FaultPlan(port_down_rate=0.2, port_down_cycles=150.0, seed=3)
        machine, _cycles = build_and_run(plan, n_ces=4, strips=4)
        injector = machine.faults
        assert injector.port_downs > 0
        assert injector.rerouted > 0
        assert injector.stats()["rerouted"] == injector.rerouted

    def test_reroutes_are_deterministic_per_seed(self):
        plan = FaultPlan(port_down_rate=0.2, port_down_cycles=150.0, seed=3)
        first_machine, first = build_and_run(plan, n_ces=4, strips=4)
        second_machine, second = build_and_run(plan, n_ces=4, strips=4)
        assert first == second
        assert first_machine.faults.stats() == second_machine.faults.stats()
