"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_topology(self):
        args = build_parser().parse_args(["topology"])
        assert args.command == "topology"

    def test_table_numbers(self):
        args = build_parser().parse_args(["table", "3"])
        assert args.number == 3

    def test_bad_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "table2", "--out", "t.json", "--fast"]
        )
        assert args.command == "trace"
        assert args.experiment == "table2" and args.out == "t.json" and args.fast

    def test_trace_default_out(self):
        args = build_parser().parse_args(["trace", "characterization"])
        assert args.out == "trace.json"

    def test_analyze_arguments(self):
        args = build_parser().parse_args(
            ["analyze", "table2", "--out", "s.json", "--top", "3", "--fast"]
        )
        assert args.command == "analyze"
        assert args.experiment == "table2" and args.out == "s.json"
        assert args.top == 3 and args.fast

    def test_analyze_out_is_optional(self):
        args = build_parser().parse_args(["analyze", "characterization"])
        assert args.out is None and args.top == 5

    def test_report_experiment_is_optional(self):
        args = build_parser().parse_args(["report"])
        assert args.command == "report" and args.experiment is None
        args = build_parser().parse_args(["report", "table2", "--fast"])
        assert args.experiment == "table2" and args.fast

    def test_run_all_report_flags(self):
        args = build_parser().parse_args(
            ["run-all", "--no-reports", "--report-dir", "r"]
        )
        assert args.no_reports and args.report_dir == "r"

    def test_timeline_arguments(self):
        args = build_parser().parse_args(
            ["timeline", "table2", "--interval", "32", "--out", "t.json"]
        )
        assert args.command == "timeline" and args.experiment == "table2"
        assert args.interval == 32.0 and args.out == "t.json"
        args = build_parser().parse_args(["timeline", "characterization"])
        assert args.interval == 64.0 and args.out is None

    def test_profile_arguments(self):
        args = build_parser().parse_args(
            ["profile", "table2", "--top", "7", "--out", "p.json"]
        )
        assert args.command == "profile" and args.experiment == "table2"
        assert args.top == 7 and args.out == "p.json"

    def test_trace_timeline_flag(self):
        args = build_parser().parse_args(["trace", "table2", "--timeline"])
        assert args.timeline == 64.0  # bare flag takes the default width
        args = build_parser().parse_args(
            ["trace", "table2", "--timeline", "128"]
        )
        assert args.timeline == 128.0
        args = build_parser().parse_args(["trace", "table2"])
        assert args.timeline is None

    def test_report_interval_flag(self):
        args = build_parser().parse_args(
            ["report", "table2", "--interval", "32"]
        )
        assert args.interval == 32.0
        args = build_parser().parse_args(["report", "table2"])
        assert args.interval is None


class TestExecution:
    def test_topology_output(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Cluster 3" in out

    def test_table3_output(self, capsys):
        assert main(["table", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "TRFD" in out

    def test_table4_output(self, capsys):
        assert main(["table", "4"]) == 0
        assert "ARC2D" in capsys.readouterr().out

    def test_table5_output(self, capsys):
        assert main(["table", "5"]) == 0
        assert "In(13,0)" in capsys.readouterr().out

    def test_table6_output(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Restructuring" in capsys.readouterr().out

    def test_fig3_output(self, capsys):
        assert main(["fig3"]) == 0
        assert "YMP" in capsys.readouterr().out

    def test_ppt4_output(self, capsys):
        assert main(["ppt4"]) == 0
        assert "CG" in capsys.readouterr().out

    def test_overheads_output(self, capsys):
        assert main(["overheads"]) == 0
        assert "XDOALL" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.monitor.tracer import validate_chrome_trace_file

        out = tmp_path / "trace.json"
        assert main(["trace", "characterization", "--out", str(out)]) == 0
        n_events, n_tracks = validate_chrome_trace_file(out)
        assert n_events > 0 and n_tracks >= 3
        stdout = capsys.readouterr().out
        assert str(out) in stdout and "tracks" in stdout

    def test_trace_unknown_experiment_rejected(self, capsys):
        assert main(["trace", "not-an-experiment", "--out", "/tmp/x.json"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not-an-experiment" in err

    def test_analyze_prints_decomposition_and_writes_spans(
        self, capsys, tmp_path
    ):
        from repro.monitor.spans import validate_spans_file

        out = tmp_path / "spans.json"
        assert main(
            ["analyze", "characterization", "--out", str(out), "--top", "2"]
        ) == 0
        n_requests, n_complete = validate_spans_file(out)
        assert n_requests > 0 and n_complete > 0
        stdout = capsys.readouterr().out
        assert "latency decomposition by phase" in stdout
        assert "bottleneck" in stdout and "p95" in stdout
        assert str(out) in stdout

    def test_analyze_unknown_experiment_rejected(self, capsys):
        assert main(["analyze", "not-an-experiment"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not-an-experiment" in err

    def test_report_single_experiment_prints_json(self, capsys):
        import json

        from repro.experiments.characterization import run_characterization

        run_characterization.cache_clear()
        assert main(["report", "characterization"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["experiment"] == "characterization"
        assert report["machines_built"] >= 1
        assert report["machines"][0]["metrics"]

    def test_report_aggregates_directory(self, capsys, tmp_path, monkeypatch):
        import json

        report = {
            "experiment": "x",
            "machines_built": 1,
            "total_sim_cycles": 10.0,
            "total_engine_events": 5,
            "elapsed_s": 0.1,
            "machines": [{"engine": {"run_wall_s": 0.05}}],
        }
        (tmp_path / "x.json").write_text(json.dumps(report))
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Run reports" in out and "x" in out

    def test_report_empty_directory_exits(self, tmp_path, capsys):
        assert main(["report", "--dir", str(tmp_path / "missing")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "run-all" in err

    def test_report_missing_collected_report_exits(self, tmp_path, capsys):
        assert main(["report", "table2", "--dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "run `python -m repro run-all table2` first" in err

    def test_report_dir_loads_collected_report(self, tmp_path, capsys):
        import json

        (tmp_path / "table2.json").write_text(
            json.dumps({"experiment": "table2", "machines_built": 1})
        )
        assert main(["report", "table2", "--dir", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["experiment"] == "table2"

    def test_timeline_prints_sparklines_and_writes_document(
        self, capsys, tmp_path
    ):
        from repro.monitor.timeline import validate_timeline_file

        out = tmp_path / "timeline.json"
        assert main(
            ["timeline", "characterization", "--interval", "64",
             "--out", str(out)]
        ) == 0
        n_series, n_intervals = validate_timeline_file(out)
        assert n_series > 2 and n_intervals > 0
        stdout = capsys.readouterr().out
        assert "timeline:" in stdout and "intervals" in stdout
        assert str(out) in stdout

    def test_timeline_unknown_experiment_rejected(self, capsys):
        assert main(["timeline", "not-an-experiment"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not-an-experiment" in err

    def test_trace_timeline_adds_counter_tracks(self, capsys, tmp_path):
        from repro.monitor.tracer import validate_chrome_trace_file

        out = tmp_path / "trace.json"
        assert main(
            ["trace", "characterization", "--timeline", "--out", str(out)]
        ) == 0
        n_events, n_tracks = validate_chrome_trace_file(out)
        assert n_events > 0
        stdout = capsys.readouterr().out
        assert "timeline counter track(s)" in stdout
        import json as _json

        with open(out) as fh:
            events = _json.load(fh)["traceEvents"]
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters and all("args" in e for e in counters)

    def test_profile_prints_subsystem_shares(self, capsys, tmp_path):
        import json as _json

        out = tmp_path / "profile.json"
        assert main(
            ["profile", "characterization", "--top", "5",
             "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "host profile" in stdout
        assert "subsystem self-time shares" in stdout
        assert "hottest frames" in stdout
        doc = _json.loads(out.read_text())
        assert doc["experiment"] == "characterization"
        assert doc["subsystem_shares"] and len(doc["frames"]) <= 5

    def test_profile_unknown_experiment_rejected(self, capsys):
        assert main(["profile", "not-an-experiment"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not-an-experiment" in err

    def test_run_all_telemetry_flags_parse(self):
        args = build_parser().parse_args(
            ["run-all", "--telemetry", "--telemetry-dir", "t",
             "--heartbeat", "0.1", "--no-progress"]
        )
        assert args.telemetry and args.telemetry_dir == "t"
        assert args.heartbeat == 0.1 and args.no_progress

    def test_run_all_telemetry_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.monitor.telemetry import validate_telemetry_file

        code = main(
            ["run-all", "topology", "--no-reports", "--telemetry",
             "--telemetry-dir", str(tmp_path / "tel")]
        )
        assert code == 0
        (jsonl,) = sorted((tmp_path / "tel").glob("*.jsonl"))
        counts = validate_telemetry_file(jsonl)
        assert counts["run_queued"] == 1 and counts["completed"] == 1
        err = capsys.readouterr().err
        assert "telemetry events ->" in err
        assert "[fleet]" in err  # the no-TTY transition lines


class TestStoreCLI:
    def _populate(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        keys = ["ab" + "cd" * 31, "ef" + "01" * 31]
        for key in keys:
            store.put(key, {"key": key, "output": "x" * 64})
        return store, keys

    def test_store_parser_subcommands(self):
        args = build_parser().parse_args(["store", "verify", "--repair"])
        assert args.command == "store" and args.store_command == "verify"
        assert args.repair and args.dir is None
        args = build_parser().parse_args(
            ["store", "gc", "--max-bytes", "1024", "--dir", "d"]
        )
        assert args.store_command == "gc"
        assert args.max_bytes == 1024 and args.dir == "d"

    def test_store_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_missing_store_root_is_a_one_line_error(self, capsys, tmp_path):
        missing = tmp_path / "nowhere"
        assert main(["store", "stats", "--dir", str(missing)]) == 1
        assert capsys.readouterr().err.startswith("error: no result store")

    def test_stats_summarizes_tree(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["store", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries      2" in out and "quarantined  0" in out

    def test_verify_clean_store_exits_zero(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["store", "verify", "--dir", str(tmp_path)]) == 0
        assert "2 entries, 2 ok, 0 issue(s)" in capsys.readouterr().out

    def test_verify_reports_corruption_and_repair_heals(
        self, capsys, tmp_path
    ):
        store, keys = self._populate(tmp_path)
        store.entry_path(keys[0]).write_text("{torn")
        # report-only pass: inconsistency -> exit 1, nothing touched
        assert main(["store", "verify", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "1 issue(s), 0 repaired" in out and "unparseable" in out
        assert store.entry_path(keys[0]).exists()
        # repair quarantines the corrupt entry; verify is clean after
        assert main(["store", "repair", "--dir", str(tmp_path)]) == 0
        assert "1 repaired" in capsys.readouterr().out
        assert not store.entry_path(keys[0]).exists()
        assert list((tmp_path / "quarantine").iterdir())
        assert main(["store", "verify", "--dir", str(tmp_path)]) == 0

    def test_gc_evicts_to_budget(self, capsys, tmp_path):
        store, keys = self._populate(tmp_path)
        size = store.stats().total_bytes
        assert main(
            ["store", "gc", "--max-bytes", str(size // 2),
             "--dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out and "evicted 1" in out
        assert store.stats().entries == 1
