"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_topology(self):
        args = build_parser().parse_args(["topology"])
        assert args.command == "topology"

    def test_table_numbers(self):
        args = build_parser().parse_args(["table", "3"])
        assert args.number == 3

    def test_bad_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_topology_output(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Cluster 3" in out

    def test_table3_output(self, capsys):
        assert main(["table", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "TRFD" in out

    def test_table4_output(self, capsys):
        assert main(["table", "4"]) == 0
        assert "ARC2D" in capsys.readouterr().out

    def test_table5_output(self, capsys):
        assert main(["table", "5"]) == 0
        assert "In(13,0)" in capsys.readouterr().out

    def test_table6_output(self, capsys):
        assert main(["table", "6"]) == 0
        assert "Restructuring" in capsys.readouterr().out

    def test_fig3_output(self, capsys):
        assert main(["fig3"]) == 0
        assert "YMP" in capsys.readouterr().out

    def test_ppt4_output(self, capsys):
        assert main(["ppt4"]) == 0
        assert "CG" in capsys.readouterr().out

    def test_overheads_output(self, capsys):
        assert main(["overheads"]) == 0
        assert "XDOALL" in capsys.readouterr().out
