"""Tests for the restructurer: dependence tests, transforms, pipelines."""

import pytest

from repro.restructurer.dependence import (
    DependenceKind,
    blocking_dependences,
    dependences_in,
    test_dependence as dep_test,
)
from repro.restructurer.ir import (
    AffineIndex,
    ArrayRef,
    CallSite,
    Loop,
    Program,
    Statement,
)
from repro.restructurer.ir import read, read_unknown, write, write_unknown
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


def loop_with(statements, trips=100, weight=1.0, **kw):
    return Loop(var="i", trips=trips, body=list(statements), weight=weight, **kw)


class TestDependenceTester:
    def test_disjoint_arrays_independent(self):
        assert dep_test(write("a", 1, 0), read("b", 1, 0), 10) is None

    def test_read_read_ignored(self):
        assert dep_test(read("a", 1, 0), read("a", 1, 1), 10) is None

    def test_strong_siv_distance(self):
        # a(i) written, a(i-1) read: flow dependence at distance 1
        dep = dep_test(write("a", 1, 0), read("a", 1, -1), 10)
        assert dep is not None and dep.distance == 1
        assert dep.kind is DependenceKind.FLOW

    def test_same_subscript_is_loop_independent(self):
        # a(i) = f(a(i)): no cross-iteration dependence
        assert dep_test(write("a", 1, 0), read("a", 1, 0), 10) is None

    def test_distance_beyond_trip_count(self):
        dep = dep_test(write("a", 1, 0), read("a", 1, -50), 10)
        assert dep is None

    def test_non_integer_distance(self):
        # a(2i) vs a(2i+1): never the same element
        assert dep_test(write("a", 2, 0), read("a", 2, 1), 10) is None

    def test_gcd_filters_incompatible_strides(self):
        # a(2i) vs a(2j+1) across iterations: gcd 2 does not divide 1
        assert dep_test(write("a", 2, 0), read("a", 1, 0), 10) is not None
        assert dep_test(write("a", 4, 0), read("a", 2, 1), 10) is None

    def test_banerjee_bounds_exclude_far_offsets(self):
        # a(i) vs a(j + 1000) with 10 trips: ranges never meet
        assert dep_test(write("a", 1, 0), read("a", 1, 1000), 10) is None

    def test_scalar_carried_dependence(self):
        dep = dep_test(write("s"), read("s"), 10)
        assert dep is not None and dep.loop_carried

    def test_unknown_subscript_assumed_dependent(self):
        dep = dep_test(write_unknown("a"), read_unknown("a"), 10)
        assert dep is not None and dep.assumed

    def test_anti_and_output_kinds(self):
        anti = dep_test(read("a", 1, -1), write("a", 1, 0), 10)
        assert anti is not None and anti.kind is DependenceKind.ANTI
        out = dep_test(write("a", 1, 0), write("a", 1, -1), 10)
        assert out is not None and out.kind is DependenceKind.OUTPUT


class TestLoopAnalysis:
    def test_clean_vector_loop_parallel_under_kap(self):
        loop = loop_with([Statement(lhs=write("y", 1, 0), rhs=[read("x", 1, 0)])])
        verdict = KAP_PIPELINE.restructure_loop(loop)
        assert verdict.parallel

    def test_recurrence_never_parallel(self):
        # y(i) = y(i-1) + x(i): a true recurrence
        loop = loop_with(
            [Statement(lhs=write("y", 1, 0), rhs=[read("y", 1, -1), read("x", 1, 0)])]
        )
        for pipeline in (KAP_PIPELINE, AUTOMATABLE_PIPELINE):
            loop.reset_analysis()
            assert not pipeline.restructure_loop(loop).parallel

    def test_scalar_temp_privatized_by_kap(self):
        # t = x(i); y(i) = t*t  — classic privatizable temporary
        loop = loop_with(
            [
                Statement(lhs=write("t"), rhs=[read("x", 1, 0)]),
                Statement(lhs=write("y", 1, 0), rhs=[read("t"), read("t")]),
            ]
        )
        verdict = KAP_PIPELINE.restructure_loop(loop)
        assert verdict.parallel
        assert "scalar privatization" in verdict.transforms

    def test_array_workspace_needs_advanced_pipeline(self):
        # w(1:m) written then read each iteration (array workspace)
        body = [
            Statement(lhs=write("w", 0, 1), rhs=[read("x", 1, 0)]),
            Statement(lhs=write("y", 1, 0), rhs=[read("w", 0, 1)]),
        ]
        loop = loop_with(body)
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel
        assert "array privatization" in verdict.transforms

    def test_reduction_needs_advanced_pipeline(self):
        loop = loop_with(
            [Statement(lhs=write("s"), rhs=[read("s"), read("x", 1, 0)],
                       reduction_op="+")]
        )
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel
        assert "parallel reduction" in verdict.transforms

    def test_advanced_induction(self):
        loop = loop_with(
            [
                Statement(lhs=write("k"), rhs=[read("k")],
                          is_induction_update=True, induction_is_advanced=True),
                Statement(lhs=write("y", 1, 0), rhs=[read("k")]),
            ]
        )
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel
        assert "advanced induction substitution" in verdict.transforms

    def test_basic_induction_handled_by_kap(self):
        loop = loop_with(
            [
                Statement(lhs=write("k"), rhs=[read("k")], is_induction_update=True),
                Statement(lhs=write("y", 1, 0), rhs=[read("k")]),
            ]
        )
        assert KAP_PIPELINE.restructure_loop(loop).parallel

    def test_runtime_test_clears_index_arrays(self):
        loop = loop_with(
            [Statement(lhs=write_unknown("a"), rhs=[read_unknown("a")])]
        )
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel
        assert "runtime dependence test" in verdict.transforms

    def test_save_calls_block_kap_only(self):
        loop = loop_with(
            [
                Statement(
                    lhs=write("y", 1, 0),
                    rhs=[read("x", 1, 0)],
                    calls=[CallSite("kernel", has_save=True)],
                )
            ]
        )
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        assert AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_opaque_call_blocks_everyone(self):
        loop = loop_with(
            [
                Statement(
                    lhs=write("y", 1, 0),
                    rhs=[],
                    calls=[CallSite("mystery")],  # neither SAVE nor pure
                )
            ]
        )
        assert not AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_ragged_loop_gets_stripmined(self):
        loop = loop_with(
            [Statement(lhs=write("y", 1, 0), rhs=[read("x", 1, 0)])], ragged=True
        )
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel and verdict.balanced_stripmine


class TestProgramReports:
    def make_program(self):
        clean = loop_with(
            [Statement(lhs=write("y", 1, 0), rhs=[read("x", 1, 0)])], weight=0.3
        )
        clean.label = "clean"
        workspace = loop_with(
            [
                Statement(lhs=write("w", 0, 1), rhs=[read("x", 1, 0)]),
                Statement(lhs=write("z", 1, 0), rhs=[read("w", 0, 1)]),
            ],
            weight=0.5,
        )
        workspace.label = "workspace"
        recurrence = loop_with(
            [Statement(lhs=write("y", 1, 0), rhs=[read("y", 1, -1)])], weight=0.1
        )
        recurrence.label = "recurrence"
        return Program(
            name="demo",
            loops=[clean, workspace, recurrence],
            serial_fraction=0.1,
        )

    def test_coverage_difference_between_pipelines(self):
        prog = self.make_program()
        kap = KAP_PIPELINE.restructure(prog)
        auto = AUTOMATABLE_PIPELINE.restructure(prog)
        assert kap.parallel_coverage == pytest.approx(0.3)
        assert auto.parallel_coverage == pytest.approx(0.8)

    def test_recurrence_blocked_everywhere(self):
        prog = self.make_program()
        auto = AUTOMATABLE_PIPELINE.restructure(prog)
        assert not auto.verdict_for("recurrence").parallel

    def test_weight_validation(self):
        prog = Program("bad", loops=[loop_with([], weight=0.5)], serial_fraction=0.1)
        with pytest.raises(ValueError):
            AUTOMATABLE_PIPELINE.restructure(prog)

    def test_reports_are_independent(self):
        """Restructure resets analysis state: running KAP after the
        automatable pipeline must not inherit its clearances."""
        prog = self.make_program()
        AUTOMATABLE_PIPELINE.restructure(prog)
        kap = KAP_PIPELINE.restructure(prog)
        assert not kap.verdict_for("workspace").parallel
