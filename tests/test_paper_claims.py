"""Every quantitative claim in the paper, checked against this
reproduction.  One test per claim; the docstring quotes the paper.

These are consolidation tests: most facts are exercised more deeply in
their own modules, but this file is the audit trail from paper text to
model behaviour.
"""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.util.units import cycles_to_seconds


class TestSection2MachineClaims:
    def test_four_clusters_of_eight(self):
        """"The system consists of four clusters ... Each cluster is a
        slightly modified Alliant FX/8 system with eight processors."""
        assert DEFAULT_CONFIG.clusters == 4
        assert DEFAULT_CONFIG.ces_per_cluster == 8

    def test_ce_cycle_170ns(self):
        """"The CE instruction cycle is 170ns.""" ""
        assert DEFAULT_CONFIG.ce.cycle_ns == 170.0

    def test_ce_peak_11_8_mflops(self):
        """"The peak performance of each CE is 11.8 Mflops on 64-bit
        vector operations." — derived from the vector-unit model."""
        from repro.cluster.vector_unit import derived_peak_mflops

        assert derived_peak_mflops() == pytest.approx(11.8, abs=0.2)

    def test_eight_32_word_vector_registers(self):
        """"The vector unit contains eight 32-word registers.""" ""
        assert DEFAULT_CONFIG.ce.vector_registers == 8
        assert DEFAULT_CONFIG.ce.vector_register_words == 32

    def test_cluster_memory_32mb_cache_512kb_lines_32b(self):
        """"Each Alliant FX/8 has 32MB of cluster memory. ... the 512KB
        physically addressed shared cache.  Cache line size is 32
        bytes.""" ""
        assert DEFAULT_CONFIG.cluster_memory.size_bytes == 32 << 20
        assert DEFAULT_CONFIG.cache.size_bytes == 512 << 10
        assert DEFAULT_CONFIG.cache.line_bytes == 32

    def test_cache_two_outstanding_misses_writes_dont_stall(self):
        """"lockup-free, allowing each CE to have two outstanding cache
        misses.  Writes do not stall a CE.""" ""
        from repro.cluster.cache_model import ClusterCacheModel

        cache = ClusterCacheModel()
        assert cache.max_outstanding_per_ce == 2

    def test_cache_bandwidth_48mb_per_ce(self):
        """"The cache bandwidth is eight 64-bit words per instruction
        cycle ... This equals 48 MB/sec per processor or 384 MB/sec per
        cluster.  The cluster memory bandwidth is half of that or
        192 MB/sec.""" ""
        words = DEFAULT_CONFIG.cache.words_per_cycle
        per_cluster = words * 8 / cycles_to_seconds(1) / 1e6
        assert per_cluster == pytest.approx(376.5, rel=0.03)  # "384" dec-MB
        assert DEFAULT_CONFIG.cluster_memory.words_per_cycle * 2 == words

    def test_global_memory_64mb_4kb_pages(self):
        """"The Cedar memory hierarchy consists of 64MB of shared
        global memory ... a virtual memory system with a 4KB page
        size.""" ""
        assert DEFAULT_CONFIG.global_memory.size_bytes == 64 << 20
        assert DEFAULT_CONFIG.vm.page_bytes == 4096

    def test_global_bandwidth_768mb_24_per_ce(self):
        """"The peak global memory bandwidth is 768 MB/sec or 24 MB/sec
        per processor ... The network bandwidth is 768 MB/sec for the
        entire system or 24 MB/sec per processor, which matches the
        global memory bandwidth.""" ""
        gm = DEFAULT_CONFIG.global_memory
        words_per_cycle = gm.modules / gm.access_cycles
        total = words_per_cycle * 8 / cycles_to_seconds(1) / 1e6
        assert total == pytest.approx(768.0, rel=0.03)
        assert total / 32 == pytest.approx(24.0, rel=0.03)

    def test_network_packets_1_to_4_words(self):
        """"Each network packet consists of one to four 64-bit
        words.""" ""
        assert DEFAULT_CONFIG.network.max_packet_words == 4

    def test_network_8x8_crossbars_two_word_queues(self):
        """"constructed with 8 x 8 crossbar switches ... A two word
        queue is used on each crossbar input and output port.""" ""
        assert DEFAULT_CONFIG.network.switch_radix == 8
        assert DEFAULT_CONFIG.network.queue_words == 2

    def test_unique_path_routing(self):
        """"Routing is based on the tag control scheme proposed in
        [Lawr75], and provides a unique path between any pair of
        input/output ports.""" ""
        from repro.network.routing import delta_path

        seen = set()
        for s in range(32):
            for d in range(32):
                seen.add((s, tuple(delta_path(s, d, [8, 4]))))
        assert len(seen) == 32 * 32  # one distinct path per pair

    def test_pfu_512_requests_and_buffer(self):
        """"the PFU issues up to 512 requests without pausing.  The
        data returns to a 512-word prefetch buffer.""" ""
        assert DEFAULT_CONFIG.prefetch.max_outstanding == 512
        assert DEFAULT_CONFIG.prefetch.buffer_words == 512

    def test_sync_instructions_in_memory_modules(self):
        """"Cedar implements a set of indivisible synchronization
        instructions in each memory module ... Test is any relational
        operation on 32-bit data (e.g. >) and Operate is a Read, Write,
        Add, Subtract, or Logical operation.""" ""
        from repro.gmemory.sync import SyncOp, TestOp

        assert {"read", "write", "add", "sub"} <= {o.value for o in SyncOp}
        assert ">" in {t.value for t in TestOp}

    def test_tracer_1m_events_histogrammer_64k_counters(self):
        """"The event tracers can each collect 1M events and the
        histogrammers have 64K 32-bit counters.""" ""
        from repro.monitor.histogram import Histogrammer
        from repro.monitor.tracer import EventTracer

        assert EventTracer.DEFAULT_CAPACITY == 1 << 20
        assert Histogrammer.BINS == 1 << 16
        assert Histogrammer.COUNTER_MAX == (1 << 32) - 1


class TestSection3SoftwareClaims:
    def test_xdoall_90us_startup_30us_fetch(self):
        """"a typical loop startup latency of 90 us and fetching the
        next iteration takes about 30 us.""" ""
        from repro.xylem.runtime import LoopKind, RuntimeLibrary

        cost = RuntimeLibrary().loop_cost(LoopKind.XDOALL)
        assert (cost.startup_us, cost.fetch_us) == (90.0, 30.0)

    def test_cdoall_starts_in_microseconds(self):
        """"The CDOALL ... can typically start in a few
        microseconds.""" ""
        from repro.xylem.runtime import LoopKind, RuntimeLibrary

        assert RuntimeLibrary().loop_cost(LoopKind.CDOALL).startup_us <= 5.0

    def test_compiler_inserts_32_word_prefetches(self):
        """"The compiler backend inserts an explicit prefetch
        instruction, of length 32 words or less, before each vector
        operation which has a global memory operand.""" ""
        from repro.kernels.programs import KERNELS

        for name in ("VF", "TM", "CG"):
            assert KERNELS[name].prefetch_block == 32

    def test_advanced_transform_list(self):
        """"These transformations include array privatization, parallel
        reductions, advanced induction variable substitution, runtime
        data dependence tests, balanced stripmining, and parallelization
        in the presence of SAVE and RETURN statements.""" ""
        from repro.restructurer.transforms import ADVANCED_TRANSFORMS

        names = {t.name for t in ADVANCED_TRANSFORMS}
        assert names == {
            "array privatization",
            "parallel reduction",
            "advanced induction substitution",
            "runtime dependence test",
            "balanced stripmining",
            "SAVE/RETURN parallelization",
        }


class TestSection4MeasurementClaims:
    def test_minimal_latency_8_interarrival_1(self):
        """"Minimal Latency is 8 cycles and minimal Interarrival time
        is 1 cycle.""" ""
        from repro.experiments.characterization import run_characterization

        c = run_characterization()
        assert c.unloaded_latency_cycles == pytest.approx(8.0, abs=0.3)
        assert c.unloaded_interarrival_cycles == pytest.approx(1.0, abs=0.1)

    def test_13_cycle_ce_latency(self):
        """"The cycles needed to move data between the CE and prefetch
        buffer complete the 13 cycle latency mentioned above.""" ""
        from repro.experiments.characterization import run_characterization

        assert run_characterization().ce_observed_latency_cycles == pytest.approx(
            13.0, abs=0.5
        )

    def test_absolute_and_effective_peak(self):
        """"the 376 MFLOPS absolute peak performance (or the 274 MFLOPS
        effective peak due to unavoidable vector startup)".""" ""
        assert DEFAULT_CONFIG.peak_mflops == pytest.approx(376, abs=1)
        assert DEFAULT_CONFIG.effective_peak_mflops == pytest.approx(274, abs=1)

    def test_stability_bound_is_five(self):
        """"an instability of about 5 has been common for the Perfect
        benchmarks [on workstations] ... we will define a system as
        stable if 1/5 <= St(K, e).""" ""
        from repro.metrics.ppt import STABILITY_BOUND

        assert STABILITY_BOUND == 5.0

    def test_band_levels(self):
        """"we shall use P/2 and P/2 log P, for P >= 8, as levels that
        denote high performance and acceptable performance.""" ""
        from repro.metrics.bands import acceptable_threshold, high_threshold

        assert high_threshold(32) == 16.0
        assert acceptable_threshold(32) == pytest.approx(3.2)

    def test_clock_ratio_28_33(self):
        """"the ratios of clock speeds of the two systems is
        170ns/6ns = 28.33.""" ""
        from repro.machines.cray import YMP8_CONFIG

        ratio = DEFAULT_CONFIG.ce.cycle_ns / YMP8_CONFIG.clock_ns
        assert ratio == pytest.approx(28.33, abs=0.01)

    def test_cedar_harmonic_mean_3_2(self):
        """"The harmonic mean ... is 23.7, 7.4 times that of Cedar"
        => Cedar's harmonic-mean MFLOPS is 3.2."""
        from repro.perfect.profiles import PAPER_TABLE3

        rates = [r.mflops for r in PAPER_TABLE3.values()]
        harmonic = len(rates) / sum(1 / r for r in rates)
        assert harmonic == pytest.approx(23.7 / 7.4, rel=0.02)

    def test_trfd_page_fault_factor_four(self):
        """"almost four times the number of page faults relative to the
        one-cluster version.""" ""
        from repro.core.config import VMConfig
        from repro.vm.paging import VirtualMemory

        pages = 128
        one = VirtualMemory(VMConfig())
        one.touch_range(0, pages * 4096, 0)
        four = VirtualMemory(VMConfig())
        for c in range(4):
            four.touch_range(0, pages * 4096, c)
        assert four.faults == 4 * one.faults

    def test_cm5_rates(self):
        """"the 32-processor CM-5 delivers between 28 and 32 MFLOPS for
        BW=3 and between 58 and 67 MFLOPS for BW=11.""" ""
        from repro.machines.cm5 import CM5Model

        cm5 = CM5Model(32)
        lo3 = cm5.matvec_mflops(16 << 10, 3)
        hi3 = cm5.matvec_mflops(256 << 10, 3)
        assert 26 <= lo3 <= hi3 <= 34
        lo11 = cm5.matvec_mflops(16 << 10, 11)
        hi11 = cm5.matvec_mflops(256 << 10, 11)
        assert 54 <= lo11 <= hi11 <= 70
