"""Smoke tests: every example script runs clean end to end.

The slow examples get their reduced modes; the point is that a user
following the README never hits a broken script.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "restructure_my_loop.py",
    "xylem_io.py",
    "cg_solver.py",
    "judging_parallelism.py",
    "perfect_study.py",
    "compile_and_run.py",
    "trfd_vm_study.py",
]


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_memory_hierarchy_example():
    result = run_example("memory_hierarchy.py")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "hit rate" in result.stdout
    assert "coherence manager refused" in result.stdout


def test_rank64_example_small_mode():
    result = run_example("rank64_update.py", "--small", timeout=400)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "GM/cache" in result.stdout


def test_example_outputs_mention_paper_anchors():
    out = run_example("quickstart.py").stdout
    assert "8" in out and "MDG" in out