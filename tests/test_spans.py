"""Request-level causal tracing: span stitching, latency decomposition,
orphan handling, fault annotation, and the spans-JSON schema."""

import json

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import (
    AwaitStream,
    BlockTransfer,
    Fence,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
    SyncInstruction,
)
from repro.monitor.histogram import Histogrammer
from repro.monitor.spans import (
    LatencyAnalysis,
    PHASES,
    SpanCollector,
    validate_spans,
    validate_spans_file,
)


def _mixed_programs():
    """One CE per origin class: prefetch, demand, store, block, sync."""

    def prefetcher():
        stream = yield StartPrefetch(length=8, stride=1, address=0)
        yield AwaitStream(stream)

    def demander():
        yield GlobalLoad(length=4, stride=1, address=64)

    def storer():
        yield GlobalStore(length=4, stride=1, address=128)
        yield Fence()

    def blocker():
        yield BlockTransfer(words=6, address=192)

    def syncer():
        yield SyncInstruction(address=7)

    return {
        0: prefetcher(),
        1: demander(),
        2: storer(),
        3: blocker(),
        4: syncer(),
    }


def _traced_run(collector=None, config=None, programs=None):
    machine = CedarMachine(config or CedarConfig())
    collector = collector if collector is not None else SpanCollector()
    collector.attach(machine.bus)
    machine.run_programs(programs or _mixed_programs())
    return machine, collector


class TestStitching:
    def test_every_origin_is_traced_and_completes(self):
        _machine, collector = _traced_run()
        spans = collector.complete_spans()
        assert collector.incomplete_spans() == []
        assert collector.dropped == 0
        by_origin = {}
        for span in spans:
            by_origin.setdefault(span.origin, []).append(span)
        assert len(by_origin["prefetch"]) == 8
        assert len(by_origin["demand"]) == 4
        assert len(by_origin["store"]) == 4
        assert len(by_origin["block"]) == 2  # 6 words, 3 data words/packet
        assert len(by_origin["sync"]) == 1

    def test_phase_sums_reconcile_exactly(self):
        _machine, collector = _traced_run()
        for span in collector.complete_spans():
            phases = span.phases()
            assert phases is not None
            assert set(phases) == set(PHASES)
            assert sum(phases.values()) == pytest.approx(span.latency, abs=1e-9)
            assert all(value >= 0.0 for value in phases.values())

    def test_hops_split_into_wait_service_blocked(self):
        _machine, collector = _traced_run()
        spans = collector.complete_spans()
        read = next(s for s in spans if s.origin == "prefetch")
        # forward: injection port + two stages; reverse: the same shape.
        forward = [h for h in read.hops if not h.is_reply]
        reverse = [h for h in read.hops if h.is_reply]
        assert [h.stage for h in forward] == ["fwd.inject", "fwd.s0", "fwd.s1"]
        assert [h.stage for h in reverse] == ["rev.inject", "rev.s0", "rev.s1"]
        for hop in read.hops:
            wait, service, blocked = hop.segments()
            assert wait >= 0.0 and blocked >= 0.0 and service > 0.0
            assert hop.enqueue + wait + service + blocked == pytest.approx(
                hop.depart
            )

    def test_store_completes_at_the_module(self):
        _machine, collector = _traced_run()
        store = next(
            s for s in collector.complete_spans() if s.origin == "store"
        )
        assert store.end == store.mem_depart
        assert store.phases()["reverse"] == 0.0
        assert not any(h.is_reply for h in store.hops)

    def test_sync_outcome_is_annotated(self):
        _machine, collector = _traced_run()
        sync = next(s for s in collector.complete_spans() if s.origin == "sync")
        assert sync.sync_success is True
        assert "add 1" in sync.sync_op

    def test_request_cap_counts_drops(self):
        _machine, collector = _traced_run(collector=SpanCollector(max_requests=3))
        assert len(collector.requests) == 3
        assert collector.dropped > 0


class TestOrphans:
    def test_truncated_run_leaves_incomplete_spans(self):
        from repro.core.engine import SimulationError

        machine = CedarMachine(CedarConfig())
        collector = SpanCollector().attach(machine.bus)

        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=0)
            yield AwaitStream(stream)

        machine.ce(0).run(prog())
        with pytest.raises(SimulationError):
            machine.engine.run(max_events=60)  # cut the run mid-flight
        incomplete = collector.incomplete_spans()
        assert incomplete  # births happened, replies never landed
        doc = collector.spans()
        assert doc["incomplete"] == len(incomplete)
        validate_spans(doc)  # incomplete spans are schema-legal

    def test_incomplete_spans_have_no_phases(self):
        from repro.core.engine import SimulationError

        machine = CedarMachine(CedarConfig())
        collector = SpanCollector().attach(machine.bus)

        def prog():
            stream = yield StartPrefetch(length=4, stride=1, address=0)
            yield AwaitStream(stream)

        machine.ce(0).run(prog())
        with pytest.raises(SimulationError):
            machine.engine.run(max_events=30)
        for span in collector.incomplete_spans():
            assert span.latency is None
            assert span.phases() is None


class TestFaultAnnotation:
    def test_ecc_retries_annotate_the_stalled_request(self):
        from repro.faults import FaultPlan

        # a fault is rolled per service *attempt* (a stalled head retries
        # and re-rolls), so the rate must stay below 1.0 to terminate.
        config = CedarConfig(faults=FaultPlan(seed=7, ecc_rate=0.5))
        _machine, collector = _traced_run(config=config)
        spans = collector.complete_spans()
        annotated = [s for s in spans if s.faults]
        assert annotated  # at rate 0.5 some access stalled (seed-pinned)
        fault = annotated[0].faults[0]
        assert fault["type"] == "ecc"
        assert fault["cycles"] > 0
        # the stall shows up as memory queueing, and the phases still
        # reconcile: the decomposition is a timeline segmentation.
        span = annotated[0]
        assert sum(span.phases().values()) == pytest.approx(span.latency)


class TestSpansSchema:
    def test_round_trip_validates(self, tmp_path):
        _machine, collector = _traced_run()
        path = tmp_path / "spans.json"
        collector.write(path)
        n_requests, n_complete = validate_spans_file(path)
        assert n_requests == len(collector.requests)
        assert n_complete == collector.completed

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            validate_spans(
                {"version": 99, "complete": 0, "incomplete": 0,
                 "dropped": 0, "requests": []}
            )

    def test_drifting_phases_rejected(self):
        _machine, collector = _traced_run()
        doc = json.loads(json.dumps(collector.spans()))
        victim = next(r for r in doc["requests"] if "phases" in r)
        victim["phases"]["forward"] += 5.0  # break the reconciliation
        with pytest.raises(ValueError, match="drift"):
            validate_spans(doc)


class TestLatencyAnalysis:
    def test_phase_shares_partition_end_to_end(self):
        _machine, collector = _traced_run()
        analysis = LatencyAnalysis.from_collector(collector)
        decomposition = analysis.phase_decomposition()
        assert sum(row["share"] for row in decomposition.values()) == (
            pytest.approx(1.0)
        )
        assert analysis.reconciliation_error() <= 1.0

    def test_bottleneck_attribution_ranks_stages(self):
        _machine, collector = _traced_run()
        analysis = LatencyAnalysis.from_collector(collector)
        ranked = analysis.bottleneck_attribution(q=0.95)
        assert ranked
        shares = [row["share"] for row in ranked]
        assert shares == sorted(shares, reverse=True)
        assert all(0.0 <= share <= 1.0 for share in shares)

    def test_slowest_orders_by_latency(self):
        _machine, collector = _traced_run()
        analysis = LatencyAnalysis.from_collector(collector)
        slowest = analysis.slowest(3)
        assert len(slowest) == 3
        latencies = [s.latency for s in slowest]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == max(s.latency for s in analysis.spans)

    def test_summary_is_json_serializable(self):
        _machine, collector = _traced_run()
        summary = LatencyAnalysis.from_collector(collector).summary()
        assert summary["requests"] == collector.completed
        json.dumps(summary)  # the report embeds this

    def test_rendered_report_mentions_every_phase(self):
        from repro.monitor.analysis import latency_report

        _machine, collector = _traced_run()
        text = latency_report(LatencyAnalysis.from_collector(collector))
        for phase in PHASES:
            assert phase in text
        assert "bottleneck" in text
        assert "slowest" in text


class TestHistogrammerPercentiles:
    def test_interpolated_percentiles_are_exact_on_uniform_data(self):
        h = Histogrammer(0.0, 100.0, bins=100)
        for value in range(100):
            h.record(value)
        assert h.percentile(0.25) == pytest.approx(25.0)
        assert h.percentile(0.5) == pytest.approx(50.0)
        assert h.percentile(0.99) == pytest.approx(99.0)

    def test_quantiles_are_monotonic(self):
        h = Histogrammer(0.0, 64.0, bins=64)
        for value in (1, 1, 2, 3, 5, 8, 13, 21, 34, 55):
            h.record(value)
        qs = h.quantiles((0.5, 0.9, 0.95, 0.99))
        assert qs == sorted(qs)
        assert len(qs) == 4

    def test_edge_bins_clamp_extreme_quantiles(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        for _ in range(5):
            h.record(1e9)  # clamps into the top bin at record time
        assert h.percentile(1.0) == 10.0  # never extrapolates past hi
        assert 9.0 <= h.percentile(0.01) <= 10.0  # all mass in top bin

    def test_within_bin_interpolation(self):
        # 4 samples all landing in one bin of width 10: the quartiles
        # spread across the bin instead of all reporting its midpoint.
        h = Histogrammer(0.0, 100.0, bins=10)
        for _ in range(4):
            h.record(25.0)
        assert h.percentile(0.25) == pytest.approx(22.5)
        assert h.percentile(1.0) == pytest.approx(30.0)


class TestChromeFlowEvents:
    def test_hops_emit_terminated_flow_chains(self):
        from repro.monitor.tracer import ChromeTracer, validate_chrome_trace

        machine = CedarMachine(CedarConfig())
        tracer = ChromeTracer().attach(machine.bus)
        machine.run_programs(_mixed_programs())
        tracer.detach()
        trace = tracer.trace()
        validate_chrome_trace(trace)
        flows = [e for e in trace["traceEvents"] if e.get("cat") == "flow"]
        assert flows
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event["ph"])
        for phases in by_id.values():
            assert phases[0] == "s"
            assert phases[-1] == "f"
            assert len(phases) >= 2  # singletons are dropped at export
            assert all(ph == "t" for ph in phases[1:-1])
