"""Unit + property tests for delta-network tag routing."""

import pytest
from hypothesis import given, strategies as st

from repro.network.routing import delta_path, mixed_radix_digits, stage_radices


class TestStageRadices:
    def test_cedar_32_port_network_is_8x4(self):
        assert stage_radices(32) == [8, 4]

    def test_64_ports(self):
        assert stage_radices(64) == [8, 8]

    def test_8_ports_single_stage(self):
        assert stage_radices(8) == [8]

    def test_product_recovers_port_count(self):
        for n in (2, 4, 8, 12, 16, 24, 32, 48, 64, 128, 256):
            rads = stage_radices(n)
            prod = 1
            for r in rads:
                prod *= r
            assert prod == n

    def test_prime_beyond_radix_rejected(self):
        with pytest.raises(ValueError):
            stage_radices(11)

    def test_single_port(self):
        assert stage_radices(1) == [1]


class TestMixedRadixDigits:
    def test_known_value(self):
        assert mixed_radix_digits(13, [8, 4]) == [3, 1]

    def test_round_trip(self):
        radices = [8, 4]
        for v in range(32):
            d = mixed_radix_digits(v, radices)
            assert d[0] * 4 + d[1] == v

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            mixed_radix_digits(32, [8, 4])
        with pytest.raises(ValueError):
            mixed_radix_digits(-1, [8, 4])


class TestDeltaPath:
    def test_final_stage_is_destination(self):
        for src in range(32):
            for dst in range(32):
                assert delta_path(src, dst, [8, 4])[-1] == dst

    def test_unique_path_property(self):
        # Lawrie routing gives exactly one path: same (src, dst) -> same path
        assert delta_path(3, 17, [8, 4]) == delta_path(3, 17, [8, 4])

    def test_stage0_mixes_destination_msd_with_source_lsd(self):
        # src=5 (digits [1,1]), dst=13 (digits [3,1]) -> stage0 port has
        # dst digit 3 and src digit 1: 3*4+1 = 13
        assert delta_path(5, 13, [8, 4]) == [13, 13]

    def test_conflict_structure(self):
        # Two sources sharing low digits conflict at stage 0 when heading
        # to destinations sharing the top digit.
        p1 = delta_path(1, 0, [8, 4])
        p2 = delta_path(1, 3, [8, 4])
        assert p1[0] == p2[0]  # same stage-0 output port => conflict
        p3 = delta_path(2, 3, [8, 4])
        assert p2[0] != p3[0]

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_path_values_in_range(self, src, dst):
        for port in delta_path(src, dst, [8, 4]):
            assert 0 <= port < 32

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_distinct_destinations_diverge_before_arrival(self, s1, d1, s2, d2):
        """Once two paths merge at some stage, they stay merged through
        the remaining stages iff destinations agree on remaining digits —
        in particular paths to different destinations must differ at the
        last stage."""
        radices = [8, 8]
        p1 = delta_path(s1, d1, radices)
        p2 = delta_path(s2, d2, radices)
        if d1 != d2:
            assert p1[-1] != p2[-1]
        else:
            assert p1[-1] == p2[-1]
