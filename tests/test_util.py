"""Tests for units and table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.util.tables import Table, format_table
from repro.util.units import (
    CYCLE_NS,
    cycles_to_seconds,
    cycles_to_us,
    mflops,
    seconds_to_cycles,
    us_to_cycles,
)


class TestUnits:
    def test_cedar_cycle(self):
        assert CYCLE_NS == 170.0

    def test_cycles_to_seconds(self):
        # one million cycles at 170ns = 0.17s
        assert cycles_to_seconds(1_000_000) == pytest.approx(0.17)

    def test_us_round_trip(self):
        assert cycles_to_us(us_to_cycles(90.0)) == pytest.approx(90.0)

    def test_seconds_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(12345.0)) == pytest.approx(12345.0)

    def test_known_conversion(self):
        # 90 us at 170 ns/cycle ~ 529.4 cycles (the XDOALL startup)
        assert us_to_cycles(90.0) == pytest.approx(529.4, rel=1e-3)

    def test_mflops(self):
        assert mflops(2_000_000, 1.0) == pytest.approx(2.0)

    def test_mflops_requires_positive_time(self):
        with pytest.raises(ValueError):
            mflops(1.0, 0.0)

    @given(st.floats(min_value=0.001, max_value=1e9))
    def test_conversion_inverse_property(self, cycles):
        assert seconds_to_cycles(cycles_to_seconds(cycles)) == pytest.approx(
            cycles, rel=1e-9
        )


class TestTables:
    def test_render_alignment(self):
        t = Table(title="demo", columns=["name", "x"])
        t.add_row(["a", 1.25])
        t.add_row(["bb", 10.0])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.2" in text and "10.0" in text

    def test_none_renders_na(self):
        t = Table(title="t", columns=["a"])
        t.add_row([None])
        assert "NA" in t.render()

    def test_precision(self):
        t = Table(title="t", columns=["a"], precision=3)
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_row_length_validated(self):
        t = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_column_accessor(self):
        t = Table(title="t", columns=["a", "b"])
        t.add_row([1, 2])
        t.add_row([3, 4])
        assert t.column("b") == [2, 4]
        with pytest.raises(KeyError):
            t.column("zz")

    def test_format_table_function(self):
        text = format_table("x", ["c"], [[1], [2]])
        assert text.count("\n") >= 4
