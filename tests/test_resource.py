"""Unit tests for the blocking FIFO resource (switch-port queue model)."""

import pytest

from repro.core.engine import Engine, SimulationError
from repro.network.packet import Packet, PacketKind
from repro.network.resource import Resource, Transit, start_transit


def _packet(words=1, src=0, dst=0):
    return Packet(kind=PacketKind.READ_REQ, src=src, dst=dst, address=0, words=words)


def _run_chain(engine, resources, packets, sink):
    for p in packets:
        start_transit(p, list(resources) + [sink])
    engine.run()


class TestServiceTiming:
    def test_single_packet_service_time(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=4, words_per_cycle=1.0)
        out = []
        start_transit(_packet(words=1), [r, lambda p: out.append(eng.now)])
        eng.run()
        assert out == [1.0]

    def test_multiword_packet_takes_longer(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=4, words_per_cycle=1.0)
        out = []
        start_transit(_packet(words=3), [r, lambda p: out.append(eng.now)])
        eng.run()
        assert out == [3.0]

    def test_fixed_cycles_added(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=4, words_per_cycle=1.0, fixed_cycles=2.0)
        out = []
        start_transit(_packet(words=1), [r, lambda p: out.append(eng.now)])
        eng.run()
        assert out == [3.0]

    def test_fifo_order_and_pipelining(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=8, words_per_cycle=1.0)
        out = []
        for i in range(3):
            start_transit(_packet(), [r, lambda p, i=i: out.append((i, eng.now))])
        eng.run()
        assert out == [(0, 1.0), (1, 2.0), (2, 3.0)]


class TestChainedResources:
    def test_two_stage_latency(self):
        eng = Engine()
        a = Resource(eng, "a", capacity_words=4)
        b = Resource(eng, "b", capacity_words=4)
        out = []
        _run_chain(eng, [a, b], [_packet()], lambda p: out.append(eng.now))
        assert out == [2.0]

    def test_pipeline_throughput_one_word_per_cycle(self):
        eng = Engine()
        a = Resource(eng, "a", capacity_words=8)
        b = Resource(eng, "b", capacity_words=8)
        out = []
        _run_chain(eng, [a, b], [_packet() for _ in range(5)],
                   lambda p: out.append(eng.now))
        # first arrives after 2 cycles; the rest stream 1/cycle behind it
        assert out == [2.0, 3.0, 4.0, 5.0, 6.0]


class TestBackpressure:
    def test_offer_rejected_when_full(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=2)
        t1 = Transit(_packet(words=2), [r], 0)
        t2 = Transit(_packet(words=1), [r], 0)
        assert r.offer(t1)
        assert not r.offer(t2)
        assert r.stats.rejected_offers == 1

    def test_cut_through_overhang(self):
        # a 4-word packet may enter a 2-word queue when it has free space
        eng = Engine()
        r = Resource(eng, "r", capacity_words=2)
        assert r.offer(Transit(_packet(words=4), [r], 0))
        assert not r.has_space()

    def test_blocked_head_stalls_upstream(self):
        eng = Engine()
        fast = Resource(eng, "fast", capacity_words=8, words_per_cycle=1.0)
        slow = Resource(eng, "slow", capacity_words=1, words_per_cycle=0.25)
        out = []
        for _ in range(4):
            start_transit(_packet(), [fast, slow, lambda p: out.append(eng.now)])
        eng.run()
        # slow serves 1 word per 4 cycles; arrivals are spaced by ~4
        assert len(out) == 4
        gaps = [b - a for a, b in zip(out, out[1:])]
        assert all(g == pytest.approx(4.0) for g in gaps)
        assert fast.stats.blocked_cycles > 0

    def test_head_of_line_blocking_preserves_order(self):
        eng = Engine()
        a = Resource(eng, "a", capacity_words=8)
        slow = Resource(eng, "slow", capacity_words=1, words_per_cycle=0.1)
        order = []
        for i in range(3):
            start_transit(_packet(), [a, slow, lambda p, i=i: order.append(i)])
        eng.run()
        assert order == [0, 1, 2]


class TestStats:
    def test_words_and_packets_counted(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=8)
        for _ in range(3):
            start_transit(_packet(words=2), [r, lambda p: None])
        eng.run()
        assert r.stats.packets == 3
        assert r.stats.words == 6

    def test_utilization(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=8)
        start_transit(_packet(words=4), [r, lambda p: None])
        end = eng.run()
        assert r.utilization(end) == pytest.approx(1.0)
        assert r.utilization(8.0) == pytest.approx(0.5)

    def test_utilization_zero_elapsed(self):
        eng = Engine()
        r = Resource(eng, "r", capacity_words=8)
        assert r.utilization(0.0) == 0.0


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Engine(), "r", capacity_words=0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            Resource(Engine(), "r", capacity_words=1, words_per_cycle=0)

    def test_empty_route_rejected(self):
        with pytest.raises(SimulationError):
            start_transit(_packet(), [])

    def test_route_must_start_with_resource(self):
        with pytest.raises(SimulationError):
            start_transit(_packet(), [lambda p: None])
