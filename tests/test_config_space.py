"""Robustness over the machine configuration space: any sensible
CedarConfig must build, run traffic, and conserve it."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ce import AwaitStream, StartPrefetch
from repro.core.config import (
    CedarConfig,
    GlobalMemoryConfig,
    NetworkConfig,
)
from repro.core.machine import CedarMachine

config_strategy = st.builds(
    lambda clusters, ces, modules, queue, inject, access, recovery: CedarConfig(
        clusters=clusters,
        ces_per_cluster=ces,
        network=NetworkConfig(queue_words=queue, injection_queue_words=inject),
        global_memory=GlobalMemoryConfig(
            modules=modules, access_cycles=access, recovery_cycles=recovery
        ),
    ),
    clusters=st.sampled_from([1, 2, 4, 8]),
    ces=st.sampled_from([2, 4, 8]),
    modules=st.sampled_from([8, 16, 32, 64]),
    queue=st.integers(min_value=1, max_value=8),
    inject=st.integers(min_value=1, max_value=8),
    access=st.integers(min_value=1, max_value=6),
    recovery=st.sampled_from([0.0, 1.0, 2.0]),
)


class TestConfigurationSpace:
    @given(config=config_strategy)
    @settings(max_examples=25, deadline=None)
    def test_any_config_builds_and_conserves_traffic(self, config):
        machine = CedarMachine(config, monitor_port=0)
        n_ces = min(4, config.total_ces)

        def prog(port):
            stream = yield StartPrefetch(length=24, stride=1, address=port * 64)
            yield AwaitStream(stream)

        machine.run_programs(
            {p: prog(p) for p in range(n_ces)}, max_events=500_000
        )
        assert machine.gmem.total_reads == 24 * n_ces
        summary = machine.probe.summary()
        assert summary.first_word_latency > 0
        assert summary.interarrival >= 0

    @given(config=config_strategy)
    @settings(max_examples=10, deadline=None)
    def test_topology_description_consistent(self, config):
        machine = CedarMachine(config)
        info = machine.describe_topology()
        assert info["total_ces"] == config.clusters * config.ces_per_cluster
        assert info["memory_modules"] == config.global_memory.modules

    def test_odd_port_counts_rejected_cleanly(self):
        """Port counts that cannot factor into <=8-radix stages raise a
        clear error instead of building a broken network."""
        config = CedarConfig(
            clusters=1,
            ces_per_cluster=8,
            global_memory=GlobalMemoryConfig(modules=11),
        )
        with pytest.raises(ValueError):
            CedarMachine(config)
