"""Tests for the omega network component (stages, sinks, conflicts)."""

import pytest

from repro.core.engine import Engine, SimulationError
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet, PacketKind


def make_net(n_ports=32, **kw):
    return OmegaNetwork(Engine(), "net", n_ports, **kw)


def packet(src, dst, words=1):
    return Packet(kind=PacketKind.READ_REQ, src=src, dst=dst, address=dst, words=words)


class TestConstruction:
    def test_cedar_geometry(self):
        net = make_net()
        assert net.n_stages == 2
        assert net.radices == [8, 4]
        assert len(net.stages[0]) == 32

    def test_64_ports(self):
        net = make_net(64)
        assert net.radices == [8, 8]


class TestDelivery:
    def test_packet_reaches_registered_sink(self):
        net = make_net()
        seen = []
        net.register_sink(13, lambda p: seen.append((p.src, net.engine.now)))
        net.inject(packet(src=5, dst=13))
        net.engine.run()
        assert seen == [(5, 3.0)]  # inject(1) + 2 stages x 1 cycle

    def test_unregistered_sink_raises(self):
        net = make_net()
        with pytest.raises(KeyError):
            net.inject(packet(0, 1))

    def test_out_of_range_ports(self):
        net = make_net()
        net.register_sink(0, lambda p: None)
        with pytest.raises(ValueError):
            net.inject(packet(0, 99))
        with pytest.raises(ValueError):
            net.register_sink(99, lambda p: None)

    def test_multiword_packet_slower(self):
        net = make_net()
        times = {}
        net.register_sink(1, lambda p: times.setdefault(p.request_id, net.engine.now))
        one = packet(0, 1, words=1)
        net.inject(one)
        net.engine.run()
        net2 = make_net()
        times2 = {}
        net2.register_sink(1, lambda p: times2.setdefault(p.request_id, net2.engine.now))
        four = packet(0, 1, words=4)
        net2.inject(four)
        net2.engine.run()
        assert times2[four.request_id] > times[one.request_id]

    def test_all_pairs_route(self):
        """Lawrie routing delivers between every (src, dst) pair."""
        net = make_net(8)
        delivered = []
        for d in range(8):
            net.register_sink(d, lambda p, d=d: delivered.append((p.src, d)))
        for s in range(8):
            for d in range(8):
                # sequential injections to avoid port backlog
                net.inject(packet(s, d))
                net.engine.run()
        assert sorted(delivered) == sorted((s, d) for s in range(8) for d in range(8))


class TestContention:
    def test_common_output_port_serializes(self):
        """All sources sending to one destination share the final link:
        arrivals are spaced by its service time."""
        net = make_net()
        arrivals = []
        net.register_sink(0, lambda p: arrivals.append(net.engine.now))
        for src in range(8):
            net.inject(packet(src, 0))
        net.engine.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g >= 0.999 for g in gaps)

    def test_disjoint_paths_parallel(self):
        """Distinct sources to distinct aligned destinations do not
        interfere: all arrive at the unloaded latency."""
        net = make_net()
        arrivals = {}
        for d in range(8):
            net.register_sink(d * 4, lambda p, d=d: arrivals.setdefault(d, net.engine.now))
        for s in range(8):
            net.inject(packet(s, s * 4))
        net.engine.run()
        assert all(t == pytest.approx(3.0) for t in arrivals.values())

    def test_injection_backpressure_raises_when_ignored(self):
        net = make_net(injection_queue_words=1)
        net.register_sink(0, lambda p: None)
        net.inject(packet(0, 0))
        assert not net.can_inject(0)
        with pytest.raises(SimulationError):
            net.inject(packet(0, 0))

    def test_words_delivered_counter(self):
        net = make_net()
        net.register_sink(0, lambda p: None)
        net.inject(packet(0, 0, words=3))
        net.engine.run()
        assert net.total_words_delivered() == 3
