"""Tests for the SimContext component registry and assembly variants."""

import pytest

from repro.core.config import CedarConfig, NetworkConfig
from repro.core.context import (
    ComponentAdapter,
    NETWORK_VARIANTS,
    SimContext,
    network_variant_for,
    validate_component,
)
from repro.core.machine import CedarMachine


class FakeComponent:
    def __init__(self):
        self.attached_to = None
        self.resets = 0

    def attach(self, ctx):
        self.attached_to = ctx

    def reset(self):
        self.resets += 1

    def stats(self):
        return {"resets": self.resets}

    def describe(self):
        return {"kind": "fake"}


class TestSimContext:
    def test_add_attaches_and_returns_component(self):
        ctx = SimContext()
        comp = FakeComponent()
        assert ctx.add("fake", comp) is comp
        assert comp.attached_to is ctx
        assert "fake" in ctx
        assert ctx.component("fake") is comp

    def test_duplicate_name_rejected(self):
        ctx = SimContext()
        ctx.add("fake", FakeComponent())
        with pytest.raises(ValueError):
            ctx.add("fake", FakeComponent())

    def test_non_component_rejected(self):
        ctx = SimContext()
        with pytest.raises(TypeError, match="not a Component"):
            ctx.add("bad", object())

    def test_validate_component_names_missing_methods(self):
        class Half:
            def attach(self, ctx):
                pass

            def reset(self):
                pass

        with pytest.raises(TypeError, match="stats"):
            validate_component(Half())

    def test_reset_fans_out_in_registration_order(self):
        ctx = SimContext()
        a, b = FakeComponent(), FakeComponent()
        ctx.add("a", a)
        ctx.add("b", b)
        ctx.engine.schedule(5, lambda: None)
        ctx.reset()
        assert (a.resets, b.resets) == (1, 1)
        assert ctx.engine.now == 0.0 and ctx.engine.pending() == 0

    def test_stats_and_describe_aggregate_by_name(self):
        ctx = SimContext()
        ctx.add("fake", FakeComponent())
        assert ctx.stats() == {"fake": {"resets": 0}}
        assert ctx.describe()["fake"] == {"kind": "fake"}

    def test_adapter_wraps_protocol_foreign_objects(self):
        class Legacy:
            stats = {"words": 3}  # data attribute shadows the protocol

        legacy = Legacy()
        calls = []
        adapter = ComponentAdapter(
            legacy,
            reset=lambda: calls.append("reset"),
            stats=lambda: dict(legacy.stats),
            describe=lambda: {"kind": "legacy"},
        )
        ctx = SimContext()
        ctx.add("legacy", adapter)
        adapter.reset()
        assert calls == ["reset"]
        assert adapter.stats() == {"words": 3}
        assert adapter.target is legacy


class TestNetworkVariants:
    def test_registry_has_all_variants(self):
        assert set(NETWORK_VARIANTS) >= {"dual", "shared", "shared-escape"}

    def test_config_selects_variant(self):
        assert network_variant_for(CedarConfig()) == "dual"
        shared = CedarConfig(network=NetworkConfig(shared_single_network=True))
        assert network_variant_for(shared) == "shared"
        escape = CedarConfig(
            network=NetworkConfig(shared_single_network=True, reply_escape=True)
        )
        assert network_variant_for(escape) == "shared-escape"

    def test_dual_machine_has_two_networks(self):
        machine = CedarMachine(CedarConfig())
        assert "net.fwd" in machine.ctx and "net.rev" in machine.ctx
        assert machine.ctx.component("net.fwd") is not machine.ctx.component(
            "net.rev"
        )

    def test_shared_machine_registers_one_fabric(self):
        machine = CedarMachine(
            CedarConfig(network=NetworkConfig(shared_single_network=True))
        )
        assert "net.fwd" in machine.ctx
        assert "net.rev" not in machine.ctx


class TestMachineLifecycle:
    def test_machine_components_are_registered(self):
        machine = CedarMachine(CedarConfig())
        names = machine.ctx.names()
        assert "gmem" in names and "xylem.fs" in names
        assert sum(1 for n in names if n.startswith("cluster[")) == 4
        assert sum(1 for n in names if n.startswith("ce[")) == 32
        assert sum(1 for n in names if n.startswith("pfu[")) == 32

    def test_stats_tree_covers_every_component(self):
        machine = CedarMachine(CedarConfig())
        tree = machine.ctx.stats()
        assert set(tree) == set(machine.ctx.names())

    def test_machine_reset_allows_identical_rerun(self):
        from repro.cluster.ce import AwaitStream, StartPrefetch

        def program():
            s = yield StartPrefetch(length=16, stride=1, address=0)
            yield AwaitStream(s)

        machine = CedarMachine(CedarConfig())
        first = machine.run_programs({0: program()})
        machine.reset()
        assert machine.engine.now == 0.0
        second = machine.run_programs({0: program()})
        assert first == second
