"""Streaming span store: fold-and-release agreement with the buffered
collector, bounded footprint, zero-cost, the version-2 spans schema,
edge-bin-corrected histogram statistics, and the soak experiment."""

import json

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import AwaitStream, GlobalLoad, GlobalStore, StartPrefetch
from repro.monitor.histogram import Histogrammer
from repro.monitor.spans import (
    LatencyAnalysis,
    PHASES,
    STREAM_SPANS_VERSION,
    SpanCollector,
    validate_spans,
    validate_spans_file,
)
from repro.monitor.streamstore import (
    SampledStreamingSpanStore,
    StreamingLatencyAnalysis,
    StreamingSpanStore,
    merge_streaming_docs,
)


def _programs(ports=8, length=32):
    def prefetcher(base):
        def program():
            stream = yield StartPrefetch(length=length, stride=1, address=base)
            yield AwaitStream(stream)

        return program()

    def mixed(base):
        def program():
            yield GlobalLoad(length=8, stride=1, address=base)
            yield GlobalStore(length=4, stride=1, address=base + 64)

        return program()

    programs = {port: prefetcher(port * 256) for port in range(ports)}
    programs.update(
        {port: mixed(port * 128) for port in range(ports, ports + 4)}
    )
    return programs


def _dual_run(**store_kwargs):
    """One simulation observed by both backends at once: the buffered
    collector (the exact population) and the streaming store."""
    machine = CedarMachine(CedarConfig())
    buffered = SpanCollector().attach(machine.bus)
    store = StreamingSpanStore(**store_kwargs).attach(machine.bus)
    cycles = machine.run_programs(_programs())
    store._drain()  # stitching is deferred; fold before inspecting
    return machine, buffered, store, cycles


def _exact_quantile(values, q):
    import math

    ordered = sorted(values)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


class TestAgreementWithBuffered:
    def test_counts_means_and_maxima_are_exact(self):
        _machine, buffered, store, _cycles = _dual_run()
        exact = LatencyAnalysis.from_collector(buffered)
        streaming = StreamingLatencyAnalysis.from_store(store)
        assert streaming.requests == exact.requests > 0
        latencies = [s.latency for s in exact.spans]
        sketch = store.latency_sketches["all"]
        assert sketch.mean() == pytest.approx(
            sum(latencies) / len(latencies), rel=1e-12
        )
        assert sketch.max == max(latencies)
        assert sketch.min == min(latencies)

    def test_quantiles_within_declared_relative_error(self):
        _machine, buffered, store, _cycles = _dual_run(relative_error=0.01)
        latencies = [
            s.latency for s in buffered.complete_spans()
            if s.phases() is not None
        ]
        row = StreamingLatencyAnalysis.from_store(store).end_to_end()["all"]
        for q, key in ((0.5, "p50"), (0.9, "p90"), (0.95, "p95"),
                       (0.99, "p99")):
            exact = _exact_quantile(latencies, q)
            assert abs(row[key] - exact) <= 0.01 * exact + 1e-9

    def test_phase_and_stage_accumulators_are_exact(self):
        _machine, buffered, store, _cycles = _dual_run()
        exact = LatencyAnalysis.from_collector(buffered)
        spans = exact.spans
        for phase in PHASES:
            expected = sum(s.phases()[phase] for s in spans)
            assert store.phase_sketches[phase].sum == pytest.approx(
                expected, abs=1e-6
            )
        streaming_stages = StreamingLatencyAnalysis.from_store(
            store
        ).stage_decomposition()
        for stage, row in exact.stage_decomposition().items():
            mine = streaming_stages[stage]
            assert mine["traversals"] == row["traversals"]
            for field in ("queue_wait", "service", "blocked", "share"):
                assert mine[field] == pytest.approx(row[field], rel=1e-9)

    def test_reconciliation_invariant_holds_at_fold_time(self):
        _machine, _buffered, store, _cycles = _dual_run()
        assert store.reconciliation_checked == store._completed
        assert store.reconciliation_violations == 0
        assert store.reconciliation_worst <= 1e-6


class TestFoldAndRelease:
    def test_completed_spans_are_released(self):
        _machine, _buffered, store, _cycles = _dual_run(exemplars=8)
        assert store._requests == {}  # nothing retained past completion
        assert len(store.complete_spans()) <= 8

    def test_footprint_is_smaller_than_the_population(self):
        _machine, buffered, store, _cycles = _dual_run(exemplars=8)
        traced = len(buffered.complete_spans())
        assert traced > 100
        assert store.tracing_footprint() < traced

    def test_eviction_at_the_inflight_cap(self):
        """At the cap the oldest in-flight span moves to the reservoir's
        incomplete side instead of the new birth being dropped."""
        machine = CedarMachine(CedarConfig())
        store = StreamingSpanStore(max_requests=4, exemplars=4).attach(
            machine.bus
        )
        machine.run_programs(_programs())
        store._drain()
        assert store.evicted > 0
        assert store.dropped == 0
        doc = store.spans()
        assert doc["evicted"] == store.evicted
        validate_spans(doc)

    def test_zero_cost_cycles_are_bit_identical(self):
        bare = CedarMachine(CedarConfig()).run_programs(_programs())
        machine = CedarMachine(CedarConfig())
        store = StreamingSpanStore().attach(machine.bus)
        streamed = machine.run_programs(_programs())
        store.detach()
        assert streamed == bare


class TestStreamingSchema:
    def test_document_validates_and_counts(self):
        _machine, _buffered, store, _cycles = _dual_run()
        doc = store.spans()
        assert doc["version"] == STREAM_SPANS_VERSION
        n_requests, n_complete = validate_spans(doc)
        assert n_complete == store._completed > 0
        # round-trips through JSON byte-for-byte
        assert json.loads(json.dumps(doc)) == doc

    def test_reconciliation_violations_are_rejected(self):
        _machine, _buffered, store, _cycles = _dual_run()
        doc = store.spans()
        doc["reconciliation"]["violations"] = 3
        with pytest.raises(ValueError, match="reconciliation"):
            validate_spans(doc)

    def test_sketch_count_mismatch_is_rejected(self):
        _machine, _buffered, store, _cycles = _dual_run()
        doc = store.spans()
        doc["sketches"]["latency"]["all"]["count"] += 1
        with pytest.raises(ValueError, match="sketch count"):
            validate_spans(doc)

    def test_write_and_validate_file(self, tmp_path):
        _machine, _buffered, store, _cycles = _dual_run()
        path = tmp_path / "stream.json"
        store.write(path)
        n_requests, n_complete = validate_spans_file(path)
        assert n_complete > 0

    def test_merged_documents_validate_and_add(self):
        docs = []
        for _ in range(2):
            machine = CedarMachine(CedarConfig())
            store = StreamingSpanStore().attach(machine.bus)
            machine.run_programs(_programs())
            docs.append(store.spans())
            store.detach()
        merged = merge_streaming_docs(docs)
        validate_spans(merged)
        assert merged["complete"] == sum(d["complete"] for d in docs)
        all_sketch = merged["sketches"]["latency"]["all"]
        assert all_sketch["count"] == sum(
            d["sketches"]["latency"]["all"]["count"] for d in docs
        )

    def test_multi_store_analysis_merges(self):
        stores = []
        for _ in range(2):
            machine = CedarMachine(CedarConfig())
            store = StreamingSpanStore().attach(machine.bus)
            machine.run_programs(_programs())
            stores.append(store)
        merged = StreamingLatencyAnalysis.from_stores(stores)
        assert merged.requests == sum(
            s.latency_sketches["all"].count for s in stores
        )
        assert merged.end_to_end()["all"]["count"] == merged.requests


class TestSampledStreaming:
    def test_sample_then_stream(self):
        machine = CedarMachine(CedarConfig())
        store = SampledStreamingSpanStore(every=4).attach(machine.bus)
        machine.run_programs(_programs())
        doc = store.spans()
        assert doc["sampled_every"] == 4
        assert doc["sampled_out"] > 0
        assert doc["complete"] > 0
        validate_spans(doc)
        assert store._requests == {}


class TestStreamingRenderers:
    def test_latency_tables_render_from_sketches(self):
        from repro.monitor.analysis import latency_tables

        _machine, _buffered, store, _cycles = _dual_run()
        out = latency_tables(StreamingLatencyAnalysis.from_store(store))
        assert "p95" in out and "p99" in out
        assert "gmem" in out

    def test_report_collector_stream_mode(self):
        from repro.monitor.report import ReportCollector

        with ReportCollector(stream=True) as collector:
            machine = CedarMachine(CedarConfig())
            machine.run_programs(_programs(ports=4, length=8))
        (record,) = collector.machine_dicts()
        latency = record["latency"]
        assert latency["mode"] == "streaming"
        assert latency["requests"] > 0
        assert latency["sketches"]["latency"]["all"]["count"] == (
            latency["requests"]
        )


class TestHistogrammerEdgeBins:
    def test_overflow_mass_sits_exactly_at_hi(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        for _ in range(3):
            h.record(50.0)
        assert h.count(9) == 3  # hardware clamp still visible
        assert h.overflow == 3
        assert h.mean() == 10.0
        assert h.percentile(0.5) == 10.0

    def test_underflow_mass_sits_exactly_at_lo(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(-5.0)
        h.record(-5.0)
        h.record(50.0)
        assert h.underflow == 2 and h.overflow == 1
        assert h.mean() == pytest.approx((0.0 * 2 + 10.0) / 3)
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 10.0

    def test_in_range_statistics_are_unbiased_by_clamped_mass(self):
        """Clamped tail mass no longer drags edge-bin interpolation: an
        in-range sample in the top bin interpolates within the bin while
        the overflow orders strictly after it."""
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(2.5)
        h.record(50.0)
        assert h.mean() == pytest.approx((2.5 + 10.0) / 2)
        assert h.percentile(0.5) == pytest.approx(2.5, abs=0.5)
        assert h.percentile(1.0) == 10.0


class TestSoakExperiment:
    def test_streaming_and_buffered_soak_agree(self):
        from repro.experiments.soak import run_soak

        streamed = run_soak(requests=1500, seed=11, stream=True)
        buffered = run_soak(requests=1500, seed=11, stream=False)
        assert not streamed.aborted and not buffered.aborted
        assert streamed.cycles == buffered.cycles  # bit-identical sim
        assert streamed.requests == buffered.requests == 1500
        assert streamed.traced == buffered.traced
        assert streamed.mean == pytest.approx(buffered.mean, rel=1e-9)
        # quantile backends: sketch (alpha=1%) vs histogram (binned)
        assert streamed.p99 == pytest.approx(buffered.p99, rel=0.05)
        assert streamed.footprint_items is not None
        assert streamed.footprint_items < streamed.traced

    def test_soak_is_registered(self):
        from repro.experiments.runner import experiment

        experiment = experiment("soak")
        assert experiment.kwargs["requests"] == 1_000_000
        assert experiment.fast_kwargs["requests"] < 100_000


class TestCLI:
    def test_soak_and_stream_flags_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["soak", "--requests", "5000", "--seed", "3", "--buffered"]
        )
        assert args.command == "soak"
        assert args.requests == 5000 and args.seed == 3 and args.buffered
        args = build_parser().parse_args(["analyze", "table2", "--stream"])
        assert args.stream
        args = build_parser().parse_args(["run-all", "--stream"])
        assert args.stream
        args = build_parser().parse_args(["report", "table2", "--stream"])
        assert args.stream

    def test_soak_command_runs(self, capsys):
        from repro.__main__ import main

        assert main(["soak", "--requests", "200"]) == 0
        stdout = capsys.readouterr().out
        assert "Soak" in stdout and "p99" in stdout

    def test_analyze_stream_writes_valid_streaming_spans(
        self, capsys, tmp_path
    ):
        from repro.__main__ import main

        out = tmp_path / "stream-spans.json"
        assert main(
            ["analyze", "characterization", "--stream", "--out", str(out),
             "--top", "2"]
        ) == 0
        n_requests, n_complete = validate_spans_file(out)
        assert n_complete > 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "streaming"
        stdout = capsys.readouterr().out
        assert "resident traced items" in stdout
