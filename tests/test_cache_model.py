"""Tests for the functional cluster-cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.cluster.cache_model import ClusterCacheModel


def small_cache(lines=8, ways=2, line_bytes=32, banks=4):
    config = CacheConfig(size_bytes=lines * line_bytes, line_bytes=line_bytes,
                         banks=banks)
    return ClusterCacheModel(config, ways=ways)


class TestGeometry:
    def test_cedar_geometry(self):
        cache = ClusterCacheModel()
        # 512KB / 32B = 16K lines; 4 ways -> 4K sets
        assert cache.n_sets == 4096
        assert cache.line_of(0) == cache.line_of(31)
        assert cache.line_of(32) == 1

    def test_bank_interleave(self):
        cache = ClusterCacheModel()
        banks = [cache.bank_of(line) for line in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterCacheModel(ways=0)
        with pytest.raises(ValueError):
            ClusterCacheModel().line_of(-1)


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0, ce=0)
        assert not first.hit
        second = cache.access(8, ce=0)  # same 32B line
        assert second.hit

    def test_distinct_lines_miss_independently(self):
        cache = small_cache()
        assert not cache.access(0, ce=0).hit
        assert not cache.access(64, ce=0).hit

    def test_hit_rate_stat(self):
        cache = small_cache()
        cache.access(0, ce=0)
        for _ in range(9):
            cache.access(0, ce=0)
        assert cache.stats.hit_rate == pytest.approx(0.9)


class TestReplacement:
    def test_lru_within_set(self):
        # 2-way: lines 0, 4, 8 map to set 0 (4 sets)
        cache = small_cache(lines=8, ways=2)
        s = cache.n_sets
        a, b, c = 0, s * 32, 2 * s * 32  # same set, different tags
        cache.access(a, ce=0)
        cache.access(b, ce=0)
        cache.access(a, ce=0)       # a most-recent
        cache.access(c, ce=0)       # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_capacity_bounded(self):
        cache = small_cache(lines=8, ways=2)
        for i in range(100):
            cache.access(i * 32, ce=0)
        assert cache.resident_lines <= 8


class TestWriteBack:
    def test_clean_eviction_no_writeback(self):
        cache = small_cache(lines=4, ways=1)
        s = cache.n_sets
        cache.access(0, ce=0)                      # clean
        result = cache.access(s * 32, ce=0)        # evicts line 0
        assert result.writeback_line is None

    def test_dirty_eviction_writes_back(self):
        cache = small_cache(lines=4, ways=1)
        s = cache.n_sets
        cache.access(0, ce=0, write=True)          # dirty
        result = cache.access(s * 32, ce=0)
        assert result.writeback_line == 0
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = small_cache()
        cache.access(0, ce=0)
        cache.access(0, ce=0, write=True)
        assert cache.is_dirty(0)

    def test_flush_returns_dirty_lines(self):
        cache = small_cache()
        cache.access(0, ce=0, write=True)
        cache.access(64, ce=0)  # clean
        dirty = cache.flush()
        assert dirty == [0]
        assert cache.resident_lines == 0


class TestLockupFree:
    def test_two_outstanding_misses_allowed(self):
        cache = small_cache(lines=64, ways=4)
        r1 = cache.access(0, ce=0)
        r2 = cache.access(64, ce=0)
        assert not r1.stalled_for_miss_slot and not r2.stalled_for_miss_slot

    def test_third_miss_stalls(self):
        cache = small_cache(lines=64, ways=4)
        cache.access(0, ce=0)
        cache.access(64, ce=0)
        r3 = cache.access(128, ce=0)
        assert r3.stalled_for_miss_slot
        assert cache.stats.miss_slot_stalls == 1

    def test_retire_frees_slot(self):
        cache = small_cache(lines=64, ways=4)
        cache.access(0, ce=0)
        cache.access(64, ce=0)
        cache.retire_miss(0, ce=0)
        r3 = cache.access(128, ce=0)
        assert not r3.stalled_for_miss_slot

    def test_slots_are_per_ce(self):
        cache = small_cache(lines=64, ways=4)
        cache.access(0, ce=0)
        cache.access(64, ce=0)
        other = cache.access(128, ce=1)
        assert not other.stalled_for_miss_slot


class TestAgainstReferenceModel:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1023),  # line
                st.booleans(),                              # write
            ),
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fully_associative_single_set_matches_lru_reference(self, trace):
        """With one set, the cache must behave exactly like an LRU list
        of `ways` lines (reference model comparison)."""
        ways = 4
        config = CacheConfig(size_bytes=ways * 32, line_bytes=32, banks=1)
        cache = ClusterCacheModel(config, ways=ways)
        assert cache.n_sets == 1
        reference = []  # most-recent last
        for line, write in trace:
            addr = line * 32
            expect_hit = line in reference
            result = cache.access(addr, ce=0, write=write)
            assert result.hit is expect_hit
            if line in reference:
                reference.remove(line)
            reference.append(line)
            if len(reference) > ways:
                reference.pop(0)
        assert cache.resident_lines == len(reference)
        for line in reference:
            assert cache.contains(line * 32)

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_rereference_always_hits(self, lines):
        cache = ClusterCacheModel()
        for line in lines:
            cache.access(line * 32, ce=0)
            assert cache.access(line * 32, ce=0).hit
