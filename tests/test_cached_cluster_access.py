"""Integration tests: the functional cache in the timed cluster path."""

import pytest

from repro.cluster.ce import ClusterVectorOp
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine


def run_ops(ops, port=0):
    machine = CedarMachine(CedarConfig())
    results = []

    def prog():
        for op in ops:
            result = yield op
            results.append(result)

    t = machine.run_programs({port: prog()})
    return machine, t, results


class TestCachedVectorAccess:
    def test_cold_sweep_misses_every_line(self):
        # 64 words over 16 lines: all cold
        _, _, results = run_ops([ClusterVectorOp(words=64, address=0)])
        assert results[0] == 16  # one missed word per 4-word line

    def test_second_sweep_hits(self):
        ops = [
            ClusterVectorOp(words=64, address=0),
            ClusterVectorOp(words=64, address=0),
        ]
        _, _, results = run_ops(ops)
        assert results == [16, 0]

    def test_rereference_is_faster(self):
        # light compute per word so the memory path is visible
        cold_op = ClusterVectorOp(words=256, address=0, cycles_per_word=0.1)
        m1, t_cold, _ = run_ops([cold_op])
        ops = [
            ClusterVectorOp(words=256, address=0, cycles_per_word=0.1),
            ClusterVectorOp(words=256, address=0, cycles_per_word=0.1),
        ]
        m2, t_both, _ = run_ops(ops)
        warm = t_both - t_cold
        assert warm < t_cold  # the warm pass skips the memory fills

    def test_writes_mark_dirty_and_evictions_write_back(self):
        machine = CedarMachine(CedarConfig())
        cache = machine.clusters[0].cache_model
        cache_words = cache.config.size_bytes // 8

        def prog():
            # dirty a region, then sweep far past the cache capacity
            yield ClusterVectorOp(words=256, address=0, write=True)
            yield ClusterVectorOp(words=2 * cache_words, address=4096)

        machine.run_programs({0: prog()})
        assert cache.stats.writebacks > 0

    def test_unaddressed_op_returns_none(self):
        _, _, results = run_ops([ClusterVectorOp(words=32)])
        assert results == [None]

    def test_per_cluster_caches_independent(self):
        machine = CedarMachine(CedarConfig())

        def prog():
            yield ClusterVectorOp(words=64, address=0)

        # CE 0 (cluster 0) and CE 8 (cluster 1) touch the same addresses
        machine.run_programs({0: prog(), 8: prog()})
        assert machine.clusters[0].cache_model.stats.misses == 16
        assert machine.clusters[1].cache_model.stats.misses == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ops([ClusterVectorOp(words=0, address=0)])
