"""Tests for weak ordering and the fence operation."""

import pytest

from repro.cluster.ce import Compute, Fence, GlobalStore
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine


class TestFence:
    def test_fence_with_no_stores_is_immediate(self):
        machine = CedarMachine(CedarConfig())
        marks = {}

        def prog():
            yield Fence()
            marks["t"] = machine.engine.now

        machine.run_programs({0: prog()})
        assert marks["t"] == 0.0

    def test_fence_waits_for_outstanding_stores(self):
        machine = CedarMachine(CedarConfig())
        marks = {}

        def prog():
            yield GlobalStore(length=16, stride=1, address=0)
            marks["issued"] = machine.engine.now
            yield Fence()
            marks["fenced"] = machine.engine.now

        machine.run_programs({0: prog()})
        # issuing is cheap; the fence pays the memory round trip
        assert marks["fenced"] > marks["issued"] + 4.0
        assert machine.gmem.total_writes == 16

    def test_stores_complete_before_fence_returns(self):
        machine = CedarMachine(CedarConfig())
        seen = {}

        def prog():
            yield GlobalStore(length=8, stride=1, address=0)
            yield Fence()
            seen["writes_at_fence"] = machine.gmem.total_writes

        machine.run_programs({0: prog()})
        assert seen["writes_at_fence"] == 8

    def test_weak_ordering_without_fence(self):
        """Without a fence the CE races ahead of its stores — the
        weakly ordered behaviour that makes the fence necessary."""
        machine = CedarMachine(CedarConfig())
        seen = {}

        def prog():
            yield GlobalStore(length=8, stride=1, address=0)
            seen["writes_after_issue"] = machine.gmem.total_writes
            yield Compute(1)

        machine.run_programs({0: prog()})
        assert seen["writes_after_issue"] < 8  # not yet globally visible

    def test_fence_then_more_stores(self):
        machine = CedarMachine(CedarConfig())

        def prog():
            yield GlobalStore(length=4, stride=1, address=0)
            yield Fence()
            yield GlobalStore(length=4, stride=1, address=64)
            yield Fence()

        machine.run_programs({0: prog()})
        assert machine.gmem.total_writes == 8


class TestSharedNetworkAblation:
    def test_shared_fabric_deadlocks_under_load(self):
        """The design rationale for Cedar's two unidirectional
        networks: a shared request/reply fabric has a circular wait
        (replies stuck behind requests whose modules cannot drain) and
        deadlocks under kernel load — and reply-only injection escape
        does not save it, because the cycle closes through the shared
        stage buffers.  Only fully separate buffering (the two-network
        design) is deadlock-free by construction."""
        from repro.experiments.ablations import ablate_shared_network

        two, one, escape = ablate_shared_network(kernel="RK", n_ces=16)
        assert two.mflops > 0 and "DEADLOCK" not in two.setting
        assert "DEADLOCK" in one.setting
        assert "DEADLOCK" in escape.setting

    def test_shared_network_machine_still_correct(self):
        from dataclasses import replace

        from repro.cluster.ce import AwaitStream, StartPrefetch

        config = CedarConfig()
        config = replace(
            config, network=replace(config.network, shared_single_network=True)
        )
        machine = CedarMachine(config, monitor_port=0)

        def prog():
            s = yield StartPrefetch(length=32, stride=1, address=0)
            yield AwaitStream(s)

        machine.run_programs({0: prog()})
        assert machine.probe.summary().samples_latency == 1
        assert machine.reverse_network is machine.forward_network
