"""Tests for the comparison machine models."""

import pytest

from repro.machines.base import MachineExecution
from repro.machines.cm5 import CM5Model
from repro.machines.cray import CRAY_1, CRAY_YMP8, CrayModel, YMP8_CONFIG
from repro.machines.workstation import WORKSTATIONS
from repro.perfect.profiles import PAPER_TABLE3, PERFECT_CODES


class TestCrayYMP:
    def test_compiled_rates_match_published_ratios(self):
        for name, ref in PAPER_TABLE3.items():
            rate = CRAY_YMP8.compiled_mflops(name)
            assert rate == pytest.approx(ref.mflops * ref.ymp_ratio)

    def test_cedar_harmonic_mean(self):
        """"The harmonic mean for the MFLOPS on the YMP/8 is 23.7, 7.4
        times that of Cedar": 23.7 / 7.4 = 3.2 for Cedar, which the
        Table 3 MFLOPS column reproduces exactly.  (The YMP's 23.7 is
        not recoverable from the published per-code ratios — SPICE and
        QCD would dominate any harmonic mean — see EXPERIMENTS.md.)"""
        cedar = [PAPER_TABLE3[n].mflops for n in PAPER_TABLE3]

        def harmonic(xs):
            return len(xs) / sum(1.0 / x for x in xs)

        assert harmonic(cedar) == pytest.approx(23.7 / 7.4, rel=0.02)  # 3.20 vs 3.17
        # the YMP wins on every code except the two it loses outright
        losses = [n for n in PAPER_TABLE3 if PAPER_TABLE3[n].ymp_ratio < 1.0]
        assert sorted(losses) == ["QCD", "SPICE"]

    def test_manual_mode_speeds_up(self):
        manual = CrayModel(YMP8_CONFIG, "manual")
        for name in ("ARC2D", "MDG", "TRFD"):
            assert manual.speedup(name) > CRAY_YMP8.speedup(name)

    def test_speedups_bounded_by_processors(self):
        manual = CrayModel(YMP8_CONFIG, "manual")
        for name in PERFECT_CODES:
            assert 1.0 <= manual.speedup(name) <= 8.0

    def test_spice_is_the_weak_point(self):
        manual = CrayModel(YMP8_CONFIG, "manual")
        speedups = {n: manual.speedup(n) for n in PERFECT_CODES}
        assert min(speedups, key=speedups.get) == "SPICE"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CrayModel(YMP8_CONFIG, "turbo")

    def test_execution_result_structure(self):
        res = CRAY_YMP8.execute_code("MDG")
        assert isinstance(res, MachineExecution)
        assert res.seconds > 0 and res.mflops > 0
        assert res.efficiency == pytest.approx(res.speedup / 8)


class TestCray1:
    def test_single_processor(self):
        assert CRAY_1.processors == 1

    def test_slower_than_ymp(self):
        for name in ("ARC2D", "FLO52"):
            assert (
                CRAY_1.execute_code(name).mflops
                < CRAY_YMP8.execute_code(name).mflops
            )


class TestCM5:
    def test_paper_mflops_endpoints(self):
        """"the 32-processor CM-5 delivers between 28 and 32 MFLOPS for
        BW=3 and between 58 and 67 MFLOPS for BW=11, as the problem
        sizes range from 16K to 256K"."""
        cm5 = CM5Model(32)
        assert cm5.matvec_mflops(16 * 1024, 3) == pytest.approx(28.0, rel=0.1)
        assert cm5.matvec_mflops(256 * 1024, 3) == pytest.approx(32.0, rel=0.1)
        assert cm5.matvec_mflops(16 * 1024, 11) == pytest.approx(58.0, rel=0.1)
        assert cm5.matvec_mflops(256 * 1024, 11) == pytest.approx(67.0, rel=0.1)

    def test_mflops_grow_with_problem_size(self):
        cm5 = CM5Model(32)
        rates = [cm5.matvec_mflops(n, 11) for n in (16_384, 65_536, 262_144)]
        assert rates == sorted(rates)

    def test_not_high_performance(self):
        """"high performance was not achieved relative to 32, 256, or
        512 processors"."""
        from repro.metrics.bands import Band, band_for_speedup

        for procs in (32, 256, 512):
            cm5 = CM5Model(procs)
            for n in (16 * 1024, 256 * 1024):
                band = band_for_speedup(cm5.speedup(n, 11), procs)
                assert band is not Band.HIGH

    def test_perfect_suite_not_supported(self):
        with pytest.raises(NotImplementedError):
            CM5Model(32).execute_code("MDG")

    def test_validation(self):
        with pytest.raises(ValueError):
            CM5Model(0)


class TestWorkstations:
    def test_workstation_instability_is_about_5(self):
        """"an instability of about 5 has been common for the Perfect
        benchmarks" on workstations."""
        from repro.metrics.stability import instability

        for ws in WORKSTATIONS.values():
            rates = [ws.code_mflops(n) for n in PERFECT_CODES]
            assert instability(rates) <= 5.0

    def test_rs6000_faster_than_vax(self):
        vax = WORKSTATIONS["VAX 780"]
        rs = WORKSTATIONS["RS6000"]
        for name in PERFECT_CODES:
            assert rs.code_mflops(name) > vax.code_mflops(name)

    def test_single_processor_speedup_is_one(self):
        res = WORKSTATIONS["SPARC2"].execute_code("MDG")
        assert res.speedup == 1.0 and res.efficiency == 1.0
