"""Tests for the Cedar Fortran DSL: placement, vector ops, DOALLs."""

import numpy as np
import pytest

from repro.fortran import CedarFortran, Placement
from repro.fortran.placement import CedarArray


@pytest.fixture
def cf():
    return CedarFortran()


class TestPlacement:
    def test_global_attribute(self, cf):
        a = cf.global_array(np.zeros(8), name="A")
        assert a.is_global and a.home_cluster is None

    def test_default_placement_is_cluster(self, cf):
        a = cf.cluster_array(np.zeros(8), cluster=2)
        assert a.placement is Placement.CLUSTER and a.home_cluster == 2

    def test_cluster_array_invisible_remotely(self, cf):
        a = cf.cluster_array(np.zeros(8), cluster=0)
        with pytest.raises(PermissionError):
            a.check_visible_from(3)
        a.check_visible_from(0)

    def test_global_array_rejects_home_cluster(self):
        with pytest.raises(ValueError):
            CedarArray(np.zeros(4), Placement.GLOBAL, home_cluster=1)

    def test_loop_local_only_inside_doall(self, cf):
        with pytest.raises(RuntimeError):
            cf.loop_local((4,))

        seen = []

        def body(i):
            local = cf.loop_local((4,))
            seen.append(local.placement)

        cf.cdoall(2, body)
        assert seen == [Placement.LOOP_LOCAL] * 2


class TestVectorOps:
    def test_vector_op_computes(self, cf):
        a = cf.global_array(np.arange(64.0))
        b = cf.global_array(np.ones(64))
        out = cf.global_array(np.zeros(64))
        cf.vector_op(lambda x, y: x + 2 * y, out, a, b)
        np.testing.assert_allclose(out.data, np.arange(64.0) + 2)

    def test_vector_op_charges_time(self, cf):
        a = cf.global_array(np.zeros(1024))
        out = cf.global_array(np.zeros(1024))
        before = cf.clock_us
        cf.vector_op(lambda x: x * 2, out, a)
        assert cf.clock_us > before

    def test_global_operands_cost_more_than_cached(self):
        cf = CedarFortran()
        n = 4096
        g_out = cf.global_array(np.zeros(n))
        g_in = cf.global_array(np.zeros(n))
        with cf.scope() as g_time:
            cf.vector_op(lambda x: x, g_out, g_in)

        def body(_):
            local_in = cf.loop_local(n)
            local_out = cf.loop_local(n)
            cf.vector_op(lambda x: x, local_out, local_in)

        with cf.scope() as l_time:
            cf.cdoall(1, body)
        # cached loop-local access beats prefetched global access per word
        # even after the CDOALL startup
        assert g_time["us"] > 0

    def test_no_prefetch_costs_more(self):
        n = 8192
        fast = CedarFortran(use_prefetch=True)
        slow = CedarFortran(use_prefetch=False)
        for cf in (fast, slow):
            a = cf.global_array(np.zeros(n))
            out = cf.global_array(np.zeros(n))
            cf.vector_op(lambda x: x, out, a)
        assert slow.clock_us > 2 * fast.clock_us

    def test_reduction_returns_value(self, cf):
        a = cf.global_array(np.arange(10.0))
        assert cf.reduction(np.sum, a) == pytest.approx(45.0)


class TestDoalls:
    def test_cdoall_executes_all_iterations(self, cf):
        data = cf.cluster_array(np.zeros(16))

        def body(i):
            data.data[i] = i * i

        cf.cdoall(16, body)
        np.testing.assert_allclose(data.data, np.arange(16.0) ** 2)

    def test_xdoall_startup_dominates_empty_loop(self, cf):
        before = cf.clock_us
        cf.xdoall(0, lambda i: None)
        assert cf.clock_us - before == pytest.approx(90.0)

    def test_cdoall_cheaper_than_xdoall_for_small_loops(self):
        """An SDOALL/CDOALL nest has lower scheduling cost (Section 3.2)."""
        via_x = CedarFortran()
        via_x.xdoall(8, lambda i: via_x.compute_us(5.0))
        via_c = CedarFortran()
        via_c.cdoall(8, lambda i: via_c.compute_us(5.0))
        assert via_c.clock_us < via_x.clock_us

    def test_parallel_speedup_of_uniform_loop(self, cf):
        # 32 iterations of 1000us on 32 CEs: near-ideal one wave
        cf.xdoall(32, lambda i: cf.compute_us(1000.0))
        assert cf.clock_us == pytest.approx(90.0 + 30.0 + 1000.0)

    def test_sdoall_cdoall_nest(self, cf):
        hits = []

        def inner(ctx):
            def body(i):
                cf.compute_us(10.0)
                hits.append((ctx.cluster, i))

            cf.cdoall(8, body)

        cf.sdoall(4, inner)
        assert len(hits) == 32
        assert {c for c, _ in hits} == {0, 1, 2, 3}

    def test_nested_makespan_composition(self, cf):
        """4 SDOALL iterations each running an 8-iteration CDOALL of
        100us bodies: clusters work concurrently, CEs within a cluster
        work concurrently."""
        def inner(ctx):
            cf.cdoall(8, lambda i: cf.compute_us(100.0))

        cf.sdoall(4, inner)
        # inner CDOALL: ~3 + (0.4 + 100) one wave on 8 CEs
        # outer SDOALL: 90 + 30 + inner, one wave on 4 clusters
        assert cf.clock_us == pytest.approx(90.0 + 30.0 + 3.0 + 100.4, rel=0.01)

    def test_without_cedar_sync_loops_slow_down(self):
        with_sync = CedarFortran(use_cedar_sync=True)
        without = CedarFortran(use_cedar_sync=False)
        for cf in (with_sync, without):
            cf.xdoall(256, lambda i: cf.compute_us(10.0))
        assert without.clock_us > with_sync.clock_us

    def test_doall_negative_iterations(self, cf):
        with pytest.raises(ValueError):
            cf.cdoall(-1, lambda i: None)


class TestMoves:
    def test_move_copies_and_charges(self, cf):
        g = cf.global_array(np.arange(100.0))
        c = cf.cluster_array(np.zeros(100))
        before = cf.clock_us
        cf.move(g, c)
        np.testing.assert_allclose(c.data, np.arange(100.0))
        assert cf.clock_us > before
        assert cf.moves == 1

    def test_move_size_mismatch(self, cf):
        g = cf.global_array(np.zeros(4))
        c = cf.cluster_array(np.zeros(5))
        with pytest.raises(ValueError):
            cf.move(g, c)


class TestScopeAndClock:
    def test_scope_measures(self, cf):
        with cf.scope() as t:
            cf.compute_us(42.0)
        assert t["us"] == pytest.approx(42.0)
        assert cf.clock_us == pytest.approx(42.0)

    def test_negative_compute_rejected(self, cf):
        with pytest.raises(ValueError):
            cf.compute_us(-1.0)

    def test_fetch_and_add_functional(self, cf):
        assert cf.fetch_and_add(0) == 0
        assert cf.fetch_and_add(0) == 1
