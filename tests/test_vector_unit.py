"""Tests for the CE vector-unit model — the source of the timing
constants the rest of the stack uses."""

import pytest

from repro.cluster.vector_unit import (
    Operand,
    Scalar,
    VectorInstruction,
    VectorUnit,
    derived_effective_fraction,
    derived_peak_mflops,
    peak_chained_kernel,
)


def vinstr(op="vmul", length=32, operand=Operand.CACHE, dest=1, sources=(0,)):
    return VectorInstruction(op, length=length, operand=operand, dest=dest,
                             sources=sources)


class TestSingleInstructions:
    def test_cached_vector_op_timing(self):
        unit = VectorUnit()
        report = unit.execute([vinstr()])
        # startup 12 + 32 elements at 1/cycle
        assert report.cycles == pytest.approx(44.0)
        assert report.flops == 32

    def test_register_register_same_stream_rate(self):
        unit = VectorUnit()
        report = unit.execute([vinstr(operand=Operand.NONE)])
        assert report.cycles == pytest.approx(44.0)

    def test_global_operand_slows_stream(self):
        unit = VectorUnit()
        pref = unit.execute([vinstr(operand=Operand.GLOBAL_PREF)])
        plain = unit.execute([vinstr(operand=Operand.GLOBAL)])
        assert plain.cycles > 4 * pref.cycles

    def test_scalar_block(self):
        unit = VectorUnit()
        report = unit.execute([Scalar(count=6)])
        assert report.cycles == pytest.approx(12.0)
        assert report.flops == 0

    def test_short_vector(self):
        unit = VectorUnit()
        report = unit.execute([vinstr(length=4)])
        assert report.cycles == pytest.approx(12.0 + 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorInstruction("vmul", length=64)
        with pytest.raises(ValueError):
            VectorInstruction("fma")
        with pytest.raises(TypeError):
            VectorUnit().execute([42])


class TestChaining:
    def test_dependent_ops_chain(self):
        unit = VectorUnit()
        mul = vinstr("vmul", dest=1, sources=(0,))
        add = vinstr("vadd", operand=Operand.NONE, dest=2, sources=(1, 2))
        report = unit.execute([mul, add])
        # the add rides the multiply's stream: one startup, one pass
        assert report.cycles == pytest.approx(44.0)
        assert report.chained_pairs == 1
        assert report.flops == 64

    def test_independent_ops_do_not_chain(self):
        unit = VectorUnit()
        a = vinstr("vmul", dest=1, sources=(0,))
        b = vinstr("vadd", operand=Operand.NONE, dest=3, sources=(2, 4))
        report = unit.execute([a, b])
        assert report.chained_pairs == 0
        assert report.cycles == pytest.approx(88.0)

    def test_chain_depth_limited_to_two(self):
        """Only multiplier + adder exist: a third dependent op starts a
        new stream."""
        unit = VectorUnit()
        i1 = vinstr("vmul", dest=1, sources=(0,))
        i2 = vinstr("vadd", operand=Operand.NONE, dest=2, sources=(1,))
        i3 = vinstr("vadd", operand=Operand.NONE, dest=3, sources=(2,))
        report = unit.execute([i1, i2, i3])
        assert report.chained_pairs == 1
        assert report.cycles == pytest.approx(44.0 + 44.0)

    def test_scalar_glue_breaks_chains(self):
        unit = VectorUnit()
        mul = vinstr("vmul", dest=1, sources=(0,))
        add = vinstr("vadd", operand=Operand.NONE, dest=2, sources=(1,))
        report = unit.execute([mul, Scalar(2), add])
        assert report.chained_pairs == 0

    def test_length_mismatch_breaks_chain(self):
        unit = VectorUnit()
        mul = vinstr("vmul", dest=1, sources=(0,))
        add = vinstr("vadd", operand=Operand.NONE, dest=2, sources=(1,), length=16)
        report = unit.execute([mul, add])
        assert report.chained_pairs == 0

    def test_chained_slower_operand_pays_difference(self):
        unit = VectorUnit()
        mul = vinstr("vmul", operand=Operand.CACHE, dest=1, sources=(0,))
        add = vinstr("vadd", operand=Operand.CLUSTER, dest=2, sources=(1, 2))
        report = unit.execute([mul, add])
        # the cluster-memory operand streams at 2 cyc/word: +1 per word
        assert report.cycles == pytest.approx(44.0 + 32.0)


class TestDerivedConstants:
    def test_peak_is_11_8_mflops(self):
        """"The peak performance of each CE is 11.8 Mflops on 64-bit
        vector operations" — the chained kernel must derive it."""
        assert derived_peak_mflops() == pytest.approx(11.8, abs=0.3)

    def test_effective_fraction_is_32_over_44(self):
        """The 274-of-376 effective peak comes from the 12-cycle
        startup per 32-element strip."""
        assert derived_effective_fraction() == pytest.approx(32 / 44, abs=0.01)
        # consistency with the machine configuration
        from repro.core.config import DEFAULT_CONFIG

        config_fraction = (
            DEFAULT_CONFIG.effective_peak_mflops / DEFAULT_CONFIG.peak_mflops
        )
        assert derived_effective_fraction() == pytest.approx(
            config_fraction, abs=0.01
        )

    def test_peak_kernel_chains_throughout(self):
        unit = VectorUnit()
        report = unit.execute(peak_chained_kernel(strips=8))
        assert report.chained_pairs == 8
