"""Tests for the post-run analysis toolkit."""

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program
from repro.monitor.analysis import (
    bottlenecks,
    machine_resources,
    stage_heat_strip,
    utilization_report,
)


@pytest.fixture(scope="module")
def loaded_machine():
    machine = CedarMachine(CedarConfig())
    programs = {
        port: kernel_program(KERNELS["RK"], port, 6, prefetch=True)
        for port in range(32)
    }
    machine.run_programs(programs)
    return machine


class TestMachineResources:
    def test_enumerates_everything(self, loaded_machine):
        resources = machine_resources(loaded_machine)
        names = {r.name for r in resources}
        assert "gm[0]" in names
        assert "fwd.inject[0]" in names
        assert "cl0.cache" in names
        # 2 nets x (32 inject + 2x32 stages) + 32 modules + 4x2 cluster
        assert len(resources) == 2 * (32 + 64) + 32 + 8

    def test_shared_network_counted_once(self):
        from dataclasses import replace

        config = CedarConfig()
        config = replace(
            config, network=replace(config.network, shared_single_network=True)
        )
        machine = CedarMachine(config)
        resources = machine_resources(machine)
        assert len(resources) == (32 + 64) + 32 + 8


class TestUtilizationReport:
    def test_groups_present(self, loaded_machine):
        report = utilization_report(loaded_machine)
        assert set(report) >= {
            "global memory modules",
            "network injection ports",
            "network stage links",
        }

    def test_rk_saturates_global_memory(self, loaded_machine):
        """RK at 32 CEs drives the modules to their recovery-limited
        ceiling (~2/3 busy) and leaves the cluster side idle."""
        report = utilization_report(loaded_machine)
        assert report["global memory modules"] > 0.45
        assert report.get("cluster caches", 0.0) < 0.05

    def test_fresh_machine_idle(self):
        machine = CedarMachine(CedarConfig())
        report = utilization_report(machine, elapsed=100.0)
        assert all(v == 0.0 for v in report.values())


class TestBottlenecks:
    def test_backpressure_shows_at_injection(self, loaded_machine):
        """Saturated memory propagates backpressure upstream: the
        highest-pressure resources are the injection ports (mostly
        *blocked*), while the memory modules lead pure utilization."""
        top = bottlenecks(loaded_machine, top=5)
        assert all(".inject[" in r.name for r in top)
        assert all(r.blocked_fraction > r.utilization for r in top)
        pressures = [r.pressure for r in top]
        assert pressures == sorted(pressures, reverse=True)
        by_util = max(
            (r for r in bottlenecks(loaded_machine, top=200)),
            key=lambda r: r.utilization,
        )
        assert by_util.name.startswith("gm[")

    def test_top_validation(self, loaded_machine):
        with pytest.raises(ValueError):
            bottlenecks(loaded_machine, top=0)


class TestHeatStrip:
    def test_renders_all_rows(self, loaded_machine):
        strip = stage_heat_strip(loaded_machine)
        assert "fwd.s0" in strip and "rev.s1" in strip and "gm " in strip

    def test_loaded_memory_shows_shade(self, loaded_machine):
        strip = stage_heat_strip(loaded_machine)
        gm_line = next(l for l in strip.splitlines() if l.startswith("gm"))
        assert any(c not in " |" for c in gm_line[4:])
