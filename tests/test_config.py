"""Tests for the machine configuration (the paper's published numbers)."""

import pytest

from repro.core.config import CedarConfig, DEFAULT_CONFIG


class TestPublishedParameters:
    """Each assertion cites Section 2."""

    def test_four_clusters_of_eight(self):
        assert DEFAULT_CONFIG.clusters == 4
        assert DEFAULT_CONFIG.ces_per_cluster == 8
        assert DEFAULT_CONFIG.total_ces == 32

    def test_ce_cycle_and_peak(self):
        # "The CE instruction cycle is 170ns ... peak performance of
        # each CE is 11.8 Mflops"
        assert DEFAULT_CONFIG.ce.cycle_ns == 170.0
        per_ce = DEFAULT_CONFIG.peak_mflops / 32
        assert per_ce == pytest.approx(11.8, abs=0.1)

    def test_vector_registers(self):
        # "The vector unit contains eight 32-word registers"
        assert DEFAULT_CONFIG.ce.vector_registers == 8
        assert DEFAULT_CONFIG.ce.vector_register_words == 32

    def test_two_outstanding_misses(self):
        # "allowing each CE to have two outstanding cache misses"
        assert DEFAULT_CONFIG.ce.max_outstanding_misses == 2

    def test_cache_geometry(self):
        # "4-way interleaved ... 512KB ... Cache line size is 32 bytes"
        cache = DEFAULT_CONFIG.cache
        assert cache.size_bytes == 512 * 1024
        assert cache.line_bytes == 32
        assert cache.banks == 4
        assert cache.write_back and cache.lockup_free

    def test_cache_and_cluster_memory_bandwidth(self):
        # "eight 64-bit words per instruction cycle ... The cluster
        # memory bandwidth is half of that"
        assert DEFAULT_CONFIG.cache.words_per_cycle == 8
        assert DEFAULT_CONFIG.cluster_memory.words_per_cycle == 4

    def test_memory_sizes(self):
        # "32MB of cluster memory ... 64MB of shared global memory"
        assert DEFAULT_CONFIG.cluster_memory.size_bytes == 32 * 1024 * 1024
        assert DEFAULT_CONFIG.global_memory.size_bytes == 64 * 1024 * 1024

    def test_page_size(self):
        # "a virtual memory system with a 4KB page size"
        assert DEFAULT_CONFIG.vm.page_bytes == 4096

    def test_network_parameters(self):
        # "8 x 8 crossbar switches ... A two word queue is used on each
        # crossbar input and output port"
        assert DEFAULT_CONFIG.network.switch_radix == 8
        assert DEFAULT_CONFIG.network.queue_words == 2
        assert DEFAULT_CONFIG.network.max_packet_words == 4

    def test_global_bandwidth(self):
        # "The peak global memory bandwidth is 768 MB/sec or 24 MB/sec
        # per processor": 32 modules / 2-cycle access = 16 words/cycle
        gm = DEFAULT_CONFIG.global_memory
        words_per_cycle = gm.modules / gm.access_cycles
        mb_per_s = words_per_cycle * 8 / (170e-9) / 1e6
        assert mb_per_s == pytest.approx(768.0, rel=0.03)

    def test_prefetch_unit(self):
        # "the PFU issues up to 512 requests ... 512-word prefetch buffer"
        pf = DEFAULT_CONFIG.prefetch
        assert pf.buffer_words == 512
        assert pf.max_outstanding == 512

    def test_runtime_costs(self):
        # "loop startup latency of 90 us and fetching the next
        # iteration takes about 30 us"
        rt = DEFAULT_CONFIG.runtime
        assert rt.xdoall_startup_us == 90.0
        assert rt.xdoall_fetch_us == 30.0
        assert rt.cdoall_startup_us <= 5.0

    def test_peaks(self):
        assert DEFAULT_CONFIG.peak_mflops == pytest.approx(376.5, abs=1.0)
        assert DEFAULT_CONFIG.effective_peak_mflops == pytest.approx(274.0, abs=1.0)


class TestConfigValidation:
    def test_no_clusters_rejected(self):
        with pytest.raises(ValueError):
            CedarConfig(clusters=0)

    def test_no_ces_rejected(self):
        with pytest.raises(ValueError):
            CedarConfig(ces_per_cluster=0)

    def test_scaled_configuration(self):
        big = CedarConfig(clusters=8)
        assert big.total_ces == 64
        assert big.peak_mflops == pytest.approx(2 * DEFAULT_CONFIG.peak_mflops)

    def test_config_is_immutable(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.clusters = 5


class TestStableIdentity:
    def test_round_trip_through_dict(self):
        cfg = CedarConfig(clusters=2, ces_per_cluster=4)
        clone = CedarConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.stable_hash() == cfg.stable_hash()

    def test_round_trip_preserves_nested_overrides(self):
        from repro.core.config import GlobalMemoryConfig, NetworkConfig

        cfg = CedarConfig(
            network=NetworkConfig(queue_words=8, shared_single_network=True),
            global_memory=GlobalMemoryConfig(recovery_cycles=3.0),
        )
        clone = CedarConfig.from_dict(cfg.to_dict())
        assert clone.network.queue_words == 8
        assert clone.network.shared_single_network is True
        assert clone.global_memory.recovery_cycles == 3.0
        assert clone == cfg

    def test_equal_configs_share_a_hash(self):
        assert CedarConfig().stable_hash() == CedarConfig().stable_hash()
        assert DEFAULT_CONFIG.stable_hash() == CedarConfig().stable_hash()

    def test_any_field_change_changes_the_hash(self):
        from repro.core.config import PrefetchConfig

        base = CedarConfig()
        assert base.stable_hash() != CedarConfig(clusters=2).stable_hash()
        assert (
            base.stable_hash()
            != CedarConfig(prefetch=PrefetchConfig(arm_cycles=7)).stable_hash()
        )

    def test_hash_is_a_hex_digest(self):
        digest = DEFAULT_CONFIG.stable_hash()
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
