"""Engine watchdog: budgets, livelock detection, diagnostic dumps.

The watchdog is a pure observer — a run that stays inside its budgets
and keeps making progress is bit-identical with and without one — but
a run that livelocks or blows a budget aborts with a
:class:`WatchdogError` carrying an engine state dump instead of
spinning forever.
"""

import pytest

from repro.core.config import CedarConfig
from repro.core.engine import Engine, Watchdog, WatchdogError
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program


def zero_delay_livelock(engine):
    """The classic stuck simulation: an event that reschedules itself
    at the current time, so the clock never advances."""

    def tick():
        engine.schedule_after(0.0, tick)

    engine.schedule(0.0, tick)


def forever_advancing(engine):
    """A run that advances time forever (no livelock, just unbounded)."""

    def tick():
        engine.schedule_after(1.0, tick)

    engine.schedule(0.0, tick)


class TestWatchdogConstruction:
    def test_check_cadence_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(check_every=0)
        with pytest.raises(ValueError):
            Watchdog(stall_checks=0)

    def test_attach_arms_and_detach_returns(self):
        engine = Engine()
        watchdog = Watchdog(max_events=100)
        assert engine.attach_watchdog(watchdog) is watchdog
        assert engine.detach_watchdog() is watchdog
        assert engine.detach_watchdog() is None


class TestAborts:
    def test_zero_delay_livelock_is_detected(self):
        engine = Engine()
        zero_delay_livelock(engine)
        engine.attach_watchdog(Watchdog(check_every=16, stall_checks=4))
        with pytest.raises(WatchdogError, match="no progress"):
            engine.run_until_idle()

    def test_cycle_budget_abort(self):
        engine = Engine()
        forever_advancing(engine)
        engine.attach_watchdog(Watchdog(max_cycles=500, check_every=64))
        with pytest.raises(WatchdogError, match="cycle budget exceeded"):
            engine.run()

    def test_event_budget_abort(self):
        engine = Engine()
        forever_advancing(engine)
        engine.attach_watchdog(Watchdog(max_events=1000, check_every=64))
        with pytest.raises(WatchdogError, match="event budget exceeded"):
            engine.run()

    def test_custom_progress_fingerprint(self):
        # time advances, but the *caller's* notion of progress is frozen
        # — the watchdog trusts the fingerprint over the clock.
        engine = Engine()
        forever_advancing(engine)
        engine.attach_watchdog(
            Watchdog(progress=lambda: 0, check_every=16, stall_checks=4)
        )
        with pytest.raises(WatchdogError, match="fingerprint frozen"):
            engine.run()

    def test_abort_carries_a_diagnostic_dump(self):
        engine = Engine()
        zero_delay_livelock(engine)
        engine.attach_watchdog(Watchdog(check_every=16, stall_checks=4))
        with pytest.raises(WatchdogError) as excinfo:
            engine.run_until_idle()
        dump = excinfo.value.dump
        assert dump["events_processed"] > 0
        assert dump["upcoming"], "dump should name the rescheduled events"
        assert "tick" in dump["upcoming"][0]["callback"]


class TestTransparency:
    def test_clean_run_is_unaffected(self):
        engine = Engine()
        hits = []
        for when in (5.0, 10.0, 15.0):
            engine.schedule(when, lambda t=when: hits.append(t))
        engine.attach_watchdog(Watchdog(max_events=1000, check_every=1))
        final = engine.run_until_idle()
        assert hits == [5.0, 10.0, 15.0] and final == 15.0

    def test_machine_run_is_bit_identical_under_a_watchdog(self):
        shape = KERNELS["CG"]

        def programs():
            return {
                port: kernel_program(shape, port, 2, prefetch=True)
                for port in range(2)
            }

        bare = CedarMachine(CedarConfig()).run_programs(programs())
        supervised = CedarMachine(CedarConfig()).run_programs(
            programs(), watchdog=Watchdog(max_events=10_000_000, check_every=256)
        )
        assert supervised == bare

    def test_budgets_count_from_arming_not_time_zero(self):
        engine = Engine()
        forever_advancing(engine)
        engine.run(until=400.0)  # unsupervised warm-up
        engine.attach_watchdog(Watchdog(max_cycles=500, check_every=64))
        engine.run(until=800.0)  # 400 cycles since arming: within budget
        with pytest.raises(WatchdogError, match="cycle budget"):
            engine.run()

    def test_engine_reset_disarms(self):
        engine = Engine()
        engine.attach_watchdog(Watchdog(max_events=1))
        engine.reset()
        assert engine.detach_watchdog() is None


class TestMachineIntegration:
    def test_run_programs_detaches_after_abort(self):
        machine = CedarMachine(CedarConfig())
        shape = KERNELS["CG"]
        programs = {0: kernel_program(shape, 0, 4, prefetch=True)}
        watchdog = Watchdog(max_events=50, check_every=8)
        with pytest.raises(WatchdogError):
            machine.run_programs(programs, watchdog=watchdog)
        # the finally-block disarmed the engine: later runs are unchecked
        assert machine.engine.detach_watchdog() is None

    def test_run_programs_supplies_a_machine_fingerprint(self):
        machine = CedarMachine(CedarConfig())
        shape = KERNELS["CG"]
        watchdog = Watchdog(max_events=10_000_000)
        machine.run_programs(
            {0: kernel_program(shape, 0, 2, prefetch=True)}, watchdog=watchdog
        )
        assert watchdog.progress is not None
        remaining, fwd_words, rev_words = watchdog.progress()
        assert remaining == 0 and fwd_words > 0 and rev_words > 0
