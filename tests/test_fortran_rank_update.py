"""The rank-k update in the Cedar Fortran DSL: naive vs blocked."""

import numpy as np
import pytest

from repro.fortran import CedarFortran
from repro.fortran.library import blocked_rank_k_update, rank_k_update


def make_problem(cf, n=96, k=16, seed=0):
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n))
    b0 = rng.standard_normal((n, k))
    c0 = rng.standard_normal((k, n))
    a = cf.global_array(a0.copy(), name="A")
    b = cf.global_array(b0, name="B")
    c = cf.global_array(c0, name="C")
    return a, b, c, a0 + b0 @ c0


class TestNaiveUpdate:
    def test_computes_correctly(self):
        cf = CedarFortran()
        a, b, c, expected = make_problem(cf)
        rank_k_update(cf, a, b, c)
        np.testing.assert_allclose(a.data, expected)

    def test_charges_time(self):
        cf = CedarFortran()
        a, b, c, _ = make_problem(cf)
        rank_k_update(cf, a, b, c)
        assert cf.clock_us > 0

    def test_shape_validation(self):
        cf = CedarFortran()
        a = cf.global_array(np.zeros((4, 4)))
        b = cf.global_array(np.zeros((4, 2)))
        c = cf.global_array(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            rank_k_update(cf, a, b, c)


class TestBlockedUpdate:
    def test_computes_correctly(self):
        cf = CedarFortran()
        a, b, c, expected = make_problem(cf)
        blocked_rank_k_update(cf, a, b, c, block=32)
        np.testing.assert_allclose(a.data, expected)

    def test_odd_block_boundary(self):
        cf = CedarFortran()
        a, b, c, expected = make_problem(cf, n=70)
        blocked_rank_k_update(cf, a, b, c, block=32)  # 70 = 32+32+6
        np.testing.assert_allclose(a.data, expected)

    def test_block_validation(self):
        cf = CedarFortran()
        a, b, c, _ = make_problem(cf, n=16, k=4)
        with pytest.raises(ValueError):
            blocked_rank_k_update(cf, a, b, c, block=0)

    def test_blocked_compute_uses_cluster_rates(self):
        """The Table 1 crossover at the DSL level: for a high-reuse
        update, computing from cluster copies beats streaming global
        operands even after paying the explicit moves."""
        n, k = 256, 64
        naive = CedarFortran()
        a1, b1, c1, _ = make_problem(naive, n=n, k=k)
        rank_k_update(naive, a1, b1, c1)

        blocked = CedarFortran()
        a2, b2, c2, _ = make_problem(blocked, n=n, k=k)
        blocked_rank_k_update(blocked, a2, b2, c2, block=64)

        np.testing.assert_allclose(a1.data, a2.data)
        assert blocked.clock_us < naive.clock_us

    def test_moves_counted(self):
        cf = CedarFortran()
        a, b, c, _ = make_problem(cf, n=64)
        blocked_rank_k_update(cf, a, b, c, block=32)
        # B in once, plus (A in, A out) per panel => 1 + 2 x 2
        assert cf.moves == 5

    def test_oversized_work_array_rejected(self):
        cf = CedarFortran()
        with pytest.raises(ValueError):
            cf.work_array(np.zeros((1024, 1024)))  # 8 MB >> 512 KB cache
