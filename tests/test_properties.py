"""System-level property tests: conservation, deadlock freedom,
pipeline monotonicity, and misuse handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ce import (
    AwaitStream,
    Compute,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
)
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.restructurer.ir import Loop, Statement, read, write
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


class TestTrafficConservation:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),   # CE port
                st.integers(min_value=0, max_value=4095), # base address
                st.integers(min_value=1, max_value=48),   # stream length
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_every_prefetched_word_returns(self, streams):
        """Deadlock/livelock freedom and conservation: arbitrary
        concurrent prefetch traffic always drains, and exactly the
        requested words arrive."""
        machine = CedarMachine(CedarConfig())
        per_port = {}
        for port, base, length in streams:
            per_port.setdefault(port, []).append((base, length))

        def program(specs):
            for base, length in specs:
                stream = yield StartPrefetch(length=length, stride=1, address=base)
                yield AwaitStream(stream)

        programs = {port: program(specs) for port, specs in per_port.items()}
        machine.run_programs(programs, max_events=2_000_000)
        requested = sum(length for _, _, length in streams)
        assert machine.gmem.total_reads == requested

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=1, max_value=32),  # store length
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_every_store_lands(self, stores):
        machine = CedarMachine(CedarConfig())
        per_port = {}
        for port, length in stores:
            per_port.setdefault(port, []).append(length)

        def program(lengths):
            for i, length in enumerate(lengths):
                yield GlobalStore(length=length, stride=1, address=i * 64)
                yield Compute(1)

        machine.run_programs(
            {port: program(lengths) for port, lengths in per_port.items()},
            max_events=2_000_000,
        )
        assert machine.gmem.total_writes == sum(l for _, l in stores)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=1, max_value=24),
                st.integers(min_value=1, max_value=5),  # stride
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_mixed_loads_and_prefetches_drain(self, ops):
        machine = CedarMachine(CedarConfig())
        per_port = {}
        for port, length, stride in ops:
            per_port.setdefault(port, []).append((length, stride))

        def program(specs):
            for i, (length, stride) in enumerate(specs):
                if i % 2 == 0:
                    yield GlobalLoad(length=length, stride=stride, address=i * 128)
                else:
                    s = yield StartPrefetch(length=length, stride=stride,
                                            address=i * 128)
                    yield AwaitStream(s)

        machine.run_programs(
            {port: program(specs) for port, specs in per_port.items()},
            max_events=2_000_000,
        )
        assert machine.gmem.total_reads == sum(l for _, l, _ in ops)


class TestPipelineMonotonicity:
    @given(
        st.lists(
            st.sampled_from(
                ["clean", "scalar", "workspace", "reduction", "recurrence"]
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_automatable_parallelizes_superset_of_kap(self, kinds):
        """Whatever KAP proves parallel, the automatable pipeline must
        too (it strictly extends the transform set)."""
        for i, kind in enumerate(kinds):
            loop = self._make_loop(kind, i)
            kap = KAP_PIPELINE.restructure_loop(loop)
            loop.reset_analysis()
            auto = AUTOMATABLE_PIPELINE.restructure_loop(loop)
            if kap.parallel:
                assert auto.parallel, kind

    @staticmethod
    def _make_loop(kind: str, index: int) -> Loop:
        x, y, w, s = (f"{n}{index}" for n in "xyws")
        if kind == "clean":
            body = [Statement(lhs=write(y, 1, 0), rhs=[read(x, 1, 0)])]
        elif kind == "scalar":
            body = [
                Statement(lhs=write(s), rhs=[read(x, 1, 0)]),
                Statement(lhs=write(y, 1, 0), rhs=[read(s)]),
            ]
        elif kind == "workspace":
            body = [
                Statement(lhs=write(w, 0, 1), rhs=[read(x, 1, 0)]),
                Statement(lhs=write(y, 1, 0), rhs=[read(w, 0, 1)]),
            ]
        elif kind == "reduction":
            body = [
                Statement(lhs=write(s), rhs=[read(s), read(x, 1, 0)],
                          reduction_op="+")
            ]
        else:  # recurrence
            body = [Statement(lhs=write(y, 1, 0), rhs=[read(y, 1, -1)])]
        return Loop(var="i", trips=64, body=body, weight=1.0)


class TestMisuse:
    def test_firing_pfu_while_in_flight_rejected(self):
        machine = CedarMachine(CedarConfig())
        errors = []

        def program():
            yield StartPrefetch(length=64, stride=1, address=0)
            try:
                yield StartPrefetch(length=8, stride=1, address=512)
            except RuntimeError as exc:
                errors.append(exc)

        with pytest.raises(RuntimeError):
            machine.run_programs({0: program()})

    def test_overlong_prefetch_rejected(self):
        machine = CedarMachine(CedarConfig())
        with pytest.raises(ValueError):
            machine.pfu(0).start(length=1024, stride=1, start_address=0)

    def test_ce_cannot_run_two_programs(self):
        machine = CedarMachine(CedarConfig())

        def idle():
            yield Compute(1)

        machine.ce(0).run(idle())
        from repro.core.engine import SimulationError

        with pytest.raises(SimulationError):
            machine.ce(0).run(idle())

    def test_unknown_operation_rejected(self):
        machine = CedarMachine(CedarConfig())

        def bad():
            yield "not an op"

        machine.ce(0).run(bad())
        from repro.core.engine import SimulationError

        with pytest.raises(SimulationError):
            machine.engine.run()
