"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.engine import Engine, SimulationError


def test_events_run_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule(5, lambda: seen.append("b"))
    eng.schedule(1, lambda: seen.append("a"))
    eng.schedule(9, lambda: seen.append("c"))
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 9


def test_ties_break_in_fifo_order():
    eng = Engine()
    seen = []
    for tag in range(5):
        eng.schedule(3, lambda t=tag: seen.append(t))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_schedule_after_is_relative():
    eng = Engine()
    times = []

    def chain():
        times.append(eng.now)
        if len(times) < 3:
            eng.schedule_after(2, chain)

    eng.schedule(1, chain)
    eng.run()
    assert times == [1, 3, 5]


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(5, lambda: None)


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_after(-1, lambda: None)


def test_run_until_bound():
    eng = Engine()
    seen = []
    eng.schedule(1, lambda: seen.append(1))
    eng.schedule(100, lambda: seen.append(100))
    eng.run(until=50)
    assert seen == [1]
    assert eng.now == 50
    assert eng.pending() == 1


def test_run_resumes_after_until():
    eng = Engine()
    seen = []
    eng.schedule(100, lambda: seen.append(100))
    eng.run(until=50)
    eng.run()
    assert seen == [100]


def test_max_events_guards_against_livelock():
    eng = Engine()

    def forever():
        eng.schedule_after(1, forever)

    eng.schedule(0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=100)


def test_stop_when_predicate():
    eng = Engine()
    seen = []
    for t in range(10):
        eng.schedule(t, lambda t=t: seen.append(t))
    eng.run(stop_when=lambda: len(seen) >= 3)
    assert seen == [0, 1, 2]


def test_events_processed_counter():
    eng = Engine()
    for t in range(4):
        eng.schedule(t, lambda: None)
    eng.run()
    assert eng.events_processed == 4


# -- cancellation handles --------------------------------------------------


def test_cancel_prevents_execution():
    eng = Engine()
    seen = []
    handle = eng.schedule(5, lambda: seen.append("x"))
    assert eng.cancel(handle) is True
    eng.run()
    assert seen == []
    assert eng.pending() == 0


def test_cancel_twice_returns_false():
    eng = Engine()
    handle = eng.schedule(5, lambda: None)
    assert eng.cancel(handle) is True
    assert eng.cancel(handle) is False
    eng.run()
    assert eng.pending() == 0


def test_cancel_after_run_is_a_noop():
    eng = Engine()
    seen = []
    handle = eng.schedule(5, lambda: seen.append("x"))
    eng.run()
    assert seen == ["x"]
    assert eng.cancel(handle) is False
    assert eng.pending() == 0


def test_cancel_middle_of_ties_preserves_fifo():
    eng = Engine()
    seen = []
    handles = [eng.schedule(3, lambda t=t: seen.append(t)) for t in range(5)]
    eng.cancel(handles[2])
    eng.run()
    assert seen == [0, 1, 3, 4]


def test_pending_excludes_cancelled():
    eng = Engine()
    handles = [eng.schedule(t, lambda: None) for t in range(4)]
    assert eng.pending() == 4
    eng.cancel(handles[1])
    eng.cancel(handles[3])
    assert eng.pending() == 2


# -- varargs dispatch ------------------------------------------------------


def test_callback_receives_scheduled_args():
    eng = Engine()
    seen = []
    eng.schedule(1, seen.append, "a")
    eng.schedule_after(2, lambda x, y: seen.append((x, y)), 1, 2)
    eng.run()
    assert seen == ["a", (1, 2)]


# -- out-of-order scheduling (heap path) -----------------------------------


def test_out_of_order_schedules_interleave_correctly():
    # Descending times force every record through the heap, then the
    # monotone appends land on the sorted tail; the merged order must
    # still be global (when, seq) order.
    eng = Engine()
    seen = []
    for t in (9, 7, 5, 3, 1):
        eng.schedule(t, lambda t=t: seen.append(t))

    def chase():
        seen.append(eng.now)
        if eng.now < 8:
            eng.schedule_after(2, chase)

    eng.schedule(0, chase)
    eng.run()
    assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]


def test_tie_between_heap_and_tail_breaks_by_schedule_order():
    eng = Engine()
    seen = []
    eng.schedule(10, lambda: seen.append("tail-early"))
    eng.schedule(5, lambda: seen.append("heap"))  # out of order -> heap
    eng.run()
    assert seen == ["heap", "tail-early"]


def test_fifo_ties_across_heap_and_tail():
    eng = Engine()
    seen = []
    eng.schedule(10, lambda: seen.append("a"))  # tail, seq 0
    eng.schedule(10, lambda: seen.append("b"))  # tail, seq 1
    eng.schedule(9, lambda: None)               # heap (out of order)
    eng.schedule(10, lambda: seen.append("c"))  # tail, seq 3
    eng.run()
    assert seen == ["a", "b", "c"]


# -- stop / resume contract ------------------------------------------------


def test_request_stop_halts_after_current_event():
    eng = Engine()
    seen = []
    eng.schedule(1, lambda: seen.append(1))
    eng.schedule(2, lambda: (seen.append(2), eng.request_stop()))
    eng.schedule(3, lambda: seen.append(3))
    eng.run()
    assert seen == [1, 2]
    assert eng.pending() == 1
    eng.run()
    assert seen == [1, 2, 3]


def test_run_until_idle_drains_everything():
    eng = Engine()
    seen = []
    for t in (4, 2, 8):
        eng.schedule(t, lambda t=t: seen.append(t))
    final = eng.run_until_idle()
    assert seen == [2, 4, 8]
    assert final == 8
    assert eng.pending() == 0


def test_bounded_runs_compose_like_one_run():
    def build():
        eng = Engine()
        seen = []

        def chain(n):
            seen.append((eng.now, n))
            if n:
                eng.schedule_after(3, chain, n - 1)

        eng.schedule(1, chain, 5)
        eng.schedule(7, seen.append, "mid")
        return eng, seen

    eng1, seen1 = build()
    eng1.run()

    eng2, seen2 = build()
    eng2.run(until=6)
    assert eng2.now == 6
    eng2.run(until=11)
    eng2.run()
    assert seen2 == seen1
    assert eng2.now == eng1.now


def test_reset_clears_queue_in_place():
    eng = Engine()
    eng.schedule(5, lambda: None)
    eng.schedule(1, lambda: None)
    eng.run(until=0)
    eng.reset()
    assert eng.pending() == 0
    assert eng.now == 0.0
    seen = []
    eng.schedule(2, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [2]
