"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.engine import Engine, SimulationError


def test_events_run_in_time_order():
    eng = Engine()
    seen = []
    eng.schedule(5, lambda: seen.append("b"))
    eng.schedule(1, lambda: seen.append("a"))
    eng.schedule(9, lambda: seen.append("c"))
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 9


def test_ties_break_in_fifo_order():
    eng = Engine()
    seen = []
    for tag in range(5):
        eng.schedule(3, lambda t=tag: seen.append(t))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_schedule_after_is_relative():
    eng = Engine()
    times = []

    def chain():
        times.append(eng.now)
        if len(times) < 3:
            eng.schedule_after(2, chain)

    eng.schedule(1, chain)
    eng.run()
    assert times == [1, 3, 5]


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(5, lambda: None)


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_after(-1, lambda: None)


def test_run_until_bound():
    eng = Engine()
    seen = []
    eng.schedule(1, lambda: seen.append(1))
    eng.schedule(100, lambda: seen.append(100))
    eng.run(until=50)
    assert seen == [1]
    assert eng.now == 50
    assert eng.pending() == 1


def test_run_resumes_after_until():
    eng = Engine()
    seen = []
    eng.schedule(100, lambda: seen.append(100))
    eng.run(until=50)
    eng.run()
    assert seen == [100]


def test_max_events_guards_against_livelock():
    eng = Engine()

    def forever():
        eng.schedule_after(1, forever)

    eng.schedule(0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=100)


def test_stop_when_predicate():
    eng = Engine()
    seen = []
    for t in range(10):
        eng.schedule(t, lambda t=t: seen.append(t))
    eng.run(stop_when=lambda: len(seen) >= 3)
    assert seen == [0, 1, 2]


def test_events_processed_counter():
    eng = Engine()
    for t in range(4):
        eng.schedule(t, lambda: None)
    eng.run()
    assert eng.events_processed == 4
