"""Integration tests: end-to-end request paths through the machine.

These tests pin the calibration the paper publishes: the unloaded
network+memory round trip is 8 cycles ("Minimal Latency is 8 cycles"),
streams return one word per cycle ("minimal Interarrival time is 1
cycle"), and the CE observes 13 cycles once the buffer-to-CE move is
counted ("The cycles needed to move data between the CE and prefetch
buffer complete the 13 cycle latency").
"""

import pytest

from repro.cluster.ce import (
    AwaitStream,
    Compute,
    GlobalLoad,
    GlobalStore,
    StartPrefetch,
    SyncInstruction,
)
from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.gmemory.sync import SyncOp, TestOp as RelOp


def make_machine(monitor_port=0):
    return CedarMachine(CedarConfig(), monitor_port=monitor_port)


class TestUnloadedPrefetchPath:
    def test_minimal_first_word_latency_is_8_cycles(self):
        m = make_machine()

        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=0)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        summary = m.probe.summary()
        assert summary.first_word_latency == pytest.approx(8.0)

    def test_minimal_interarrival_is_1_cycle(self):
        m = make_machine()

        def prog():
            stream = yield StartPrefetch(length=32, stride=1, address=0)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        assert m.probe.summary().interarrival == pytest.approx(1.0)

    def test_ce_observed_latency_is_13_cycles(self):
        # arm(6) + network/memory(8) + buffer-to-CE(5) for the first word
        m = make_machine()
        times = {}

        def prog():
            stream = yield StartPrefetch(length=1, stride=1, address=0)
            times["fired"] = m.engine.now
            from repro.cluster.ce import ConsumeStream

            yield ConsumeStream(stream, cycles_per_word=0.0)
            times["consumed"] = m.engine.now

        m.run_programs({0: prog()})
        observed = times["consumed"] - times["fired"]
        arm = m.config.prefetch.arm_cycles
        assert observed == pytest.approx(arm + 8.0 + 5.0)

    def test_stride_sweeps_modules_without_conflict(self):
        m = make_machine()

        def prog():
            stream = yield StartPrefetch(length=64, stride=1, address=0)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        # stride-1 sweep: two requests landed on each of 32 modules
        touched = [mod for mod in m.gmem.modules if mod.reads]
        assert len(touched) == 32

    def test_pathological_stride_hits_one_module(self):
        m = make_machine()

        def prog():
            stream = yield StartPrefetch(length=16, stride=32, address=0)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        touched = [mod for mod in m.gmem.modules if mod.reads]
        assert len(touched) == 1
        # serialized on one module: interarrival reflects module service
        assert m.probe.summary().interarrival >= 2.0


class TestGlobalLoadPath:
    def test_two_outstanding_limit_paces_vector_loads(self):
        """GM/no-pref behaviour: throughput = 2 words per 13-cycle round
        trip (8 network/memory + 5 CE-side handling cycles)."""
        m = make_machine()
        done = {}

        def prog():
            yield GlobalLoad(length=64, stride=1, address=0)
            done["t"] = m.engine.now

        m.run_programs({0: prog()})
        per_word = done["t"] / 64
        assert per_word == pytest.approx(13.0 / 2.0, rel=0.1)

    def test_load_returns_all_words(self):
        m = make_machine()

        def prog():
            yield GlobalLoad(length=10, stride=3, address=5)

        m.run_programs({0: prog()})
        assert m.ce(0).stats.words_loaded == 10


class TestStores:
    def test_stores_do_not_stall_ce(self):
        m = make_machine()
        marks = {}

        def prog():
            yield GlobalStore(length=8, stride=1, address=0)
            marks["stored"] = m.engine.now
            yield Compute(1)

        m.run_programs({0: prog()})
        # the CE only pays issue bandwidth (2-word store packets through a
        # 1 word/cycle port), never a round trip per store
        assert marks["stored"] <= 8 * 2.5
        assert m.engine.now > marks["stored"]  # writes complete after CE moved on
        assert m.gmem.total_writes == 8


class TestSyncPath:
    def test_round_trip_returns_result(self):
        m = make_machine()
        results = []

        def prog():
            res = yield SyncInstruction(
                address=7, test=RelOp.ALWAYS, op=SyncOp.ADD, op_operand=1
            )
            results.append(res)

        m.run_programs({0: prog()})
        assert results[0].success and results[0].old_value == 0

    def test_concurrent_fetch_and_add_is_indivisible(self):
        m = make_machine()
        claims = []

        def prog(port):
            for _ in range(10):
                res = yield SyncInstruction(address=3, op=SyncOp.ADD, op_operand=1)
                claims.append(res.old_value)

        m.run_programs({p: prog(p) for p in range(8)})
        assert sorted(claims) == list(range(80))  # every claim unique

    def test_sync_ops_counted_per_module(self):
        m = make_machine()

        def prog():
            yield SyncInstruction(address=9)

        m.run_programs({0: prog()})
        assert m.gmem.total_sync_ops == 1
        assert m.gmem.modules[9].sync_ops == 1


class TestMultiCEContention:
    def test_contention_raises_latency(self):
        def run(n_ces):
            m = CedarMachine(CedarConfig(), monitor_port=0)

            def prog(port):
                base = port * 1024
                for _ in range(6):
                    stream = yield StartPrefetch(length=32, stride=1, address=base)
                    yield AwaitStream(stream)

            m.run_programs({p: prog(p) for p in range(n_ces)})
            return m.probe.summary()

        alone = run(1)
        crowded = run(32)
        assert crowded.first_word_latency > alone.first_word_latency
        assert crowded.interarrival > alone.interarrival

    def test_finish_time_reported_for_all(self):
        m = make_machine()

        def prog(port):
            yield Compute(port + 1)

        t = m.run_programs({p: prog(p) for p in range(4)})
        assert t == pytest.approx(4.0)


class TestPageBoundary:
    def test_prefetch_crossing_page_suspends(self):
        m = make_machine()
        # page = 512 words; start near the end of a page
        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=508)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        assert m.pfu(0).page_suspensions == 1

    def test_no_suspension_within_page(self):
        m = make_machine()

        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=0)
            yield AwaitStream(stream)

        m.run_programs({0: prog()})
        assert m.pfu(0).page_suspensions == 0
