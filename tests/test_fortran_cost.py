"""Tests for the vector-operation cost model."""

import pytest

from repro.core.config import CedarConfig
from repro.fortran.cost import VectorCostModel
from repro.fortran.placement import Placement


@pytest.fixture
def cost():
    return VectorCostModel(CedarConfig())


class TestTransferRates:
    def test_prefetched_global_near_one_cycle(self, cost):
        assert 1.0 <= cost.transfer_cycles_per_word(Placement.GLOBAL) <= 1.5

    def test_nopref_global_is_13_over_2(self):
        model = VectorCostModel(CedarConfig(), use_prefetch=False)
        assert model.transfer_cycles_per_word(Placement.GLOBAL) == pytest.approx(6.5)

    def test_hierarchy_ordering(self, cost):
        """cache <= cluster memory <= global-without-prefetch."""
        nopref = VectorCostModel(CedarConfig(), use_prefetch=False)
        assert (
            cost.transfer_cycles_per_word(Placement.LOOP_LOCAL)
            <= cost.transfer_cycles_per_word(Placement.CLUSTER)
            <= nopref.transfer_cycles_per_word(Placement.GLOBAL)
        )


class TestVectorOpCost:
    def test_zero_elements_free(self, cost):
        assert cost.vector_op_cycles(0, [Placement.GLOBAL]) == 0.0

    def test_per_strip_startup(self, cost):
        one_strip = cost.vector_op_cycles(32, [Placement.LOOP_LOCAL])
        two_strips = cost.vector_op_cycles(64, [Placement.LOOP_LOCAL])
        # second strip pays another startup
        assert two_strips > 2 * one_strip - 1e-9 - one_strip * 0.5

    def test_more_operands_cost_more(self, cost):
        one = cost.vector_op_cycles(320, [Placement.GLOBAL])
        three = cost.vector_op_cycles(320, [Placement.GLOBAL] * 3)
        assert three > one

    def test_compute_bound_when_flops_dominate(self, cost):
        cheap = cost.vector_op_cycles(320, [Placement.LOOP_LOCAL], flops_per_element=2)
        heavy = cost.vector_op_cycles(320, [Placement.LOOP_LOCAL], flops_per_element=16)
        assert heavy > cheap * 2

    def test_prefetch_arm_charged_per_global_operand(self):
        with_pref = VectorCostModel(CedarConfig(), use_prefetch=True)
        base = with_pref.vector_op_cycles(32, [Placement.LOOP_LOCAL])
        glob = with_pref.vector_op_cycles(32, [Placement.GLOBAL])
        assert glob >= base  # arm overhead plus slightly slower words

    def test_stores_add_port_traffic(self, cost):
        no_store = cost.vector_op_cycles(320, [Placement.GLOBAL], stores=0)
        store = cost.vector_op_cycles(320, [Placement.GLOBAL], stores=1)
        assert store > no_store

    def test_us_conversion(self, cost):
        cycles = cost.vector_op_cycles(320, [Placement.GLOBAL])
        us = cost.vector_op_us(320, [Placement.GLOBAL])
        assert us == pytest.approx(cycles * 170e-3)


class TestMoveCost:
    def test_move_scales_with_words(self, cost):
        assert cost.move_us(2000) > cost.move_us(1000) > 0

    def test_negative_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.move_us(-1)


class TestScalarAccess:
    def test_global_scalar_full_latency(self, cost):
        one = cost.scalar_access_us(1, Placement.GLOBAL)
        assert one == pytest.approx(13 * 170e-3 / 1e0 * 1e0, rel=1e-6)

    def test_cluster_scalar_cheaper(self, cost):
        assert cost.scalar_access_us(10, Placement.CLUSTER) < cost.scalar_access_us(
            10, Placement.GLOBAL
        )
