"""Tests for Xylem file-system services."""

import numpy as np
import pytest

from repro.xylem.filesystem import IOCosts, IOMode, XylemFileSystem


@pytest.fixture
def fs():
    return XylemFileSystem()


class TestLifecycle:
    def test_open_creates(self, fs):
        fs.open("fort.10")
        assert fs.exists("fort.10")

    def test_reopen_rewinds(self, fs):
        fs.open("u", IOMode.UNFORMATTED)
        fs.write("u", [1.0])
        fs.read("u")
        fs.open("u", IOMode.UNFORMATTED)
        np.testing.assert_array_equal(fs.read("u"), [1.0])

    def test_mode_mismatch_rejected(self, fs):
        fs.open("u", IOMode.UNFORMATTED)
        with pytest.raises(ValueError):
            fs.open("u", IOMode.FORMATTED)

    def test_closed_file_unusable(self, fs):
        fs.open("u")
        fs.close("u")
        with pytest.raises(ValueError):
            fs.write("u", [1.0])

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read("nope")

    def test_delete(self, fs):
        fs.open("u")
        fs.delete("u")
        assert not fs.exists("u")


class TestRecords:
    def test_write_read_round_trip(self, fs):
        fs.open("u", IOMode.UNFORMATTED)
        fs.write("u", [1.0, 2.0, 3.0])
        fs.write("u", [4.0])
        np.testing.assert_array_equal(fs.read("u"), [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(fs.read("u"), [4.0])

    def test_eof(self, fs):
        fs.open("u")
        with pytest.raises(EOFError):
            fs.read("u")

    def test_rewind(self, fs):
        fs.open("u")
        fs.write("u", [7.0])
        fs.read("u")
        fs.rewind("u")
        np.testing.assert_array_equal(fs.read("u"), [7.0])

    def test_records_are_copies(self, fs):
        fs.open("u")
        data = np.array([1.0, 2.0])
        fs.write("u", data)
        data[0] = 99.0
        np.testing.assert_array_equal(fs.read("u"), [1.0, 2.0])


class TestCostModel:
    def test_formatted_costs_about_20x_per_word(self, fs):
        assert fs.formatted_penalty() == pytest.approx(20.0)

    def test_formatted_record_slower(self):
        fmt = XylemFileSystem()
        fmt.open("f", IOMode.FORMATTED)
        fmt_us = fmt.write("f", np.zeros(1000))

        unf = XylemFileSystem()
        unf.open("u", IOMode.UNFORMATTED)
        unf_us = unf.write("u", np.zeros(1000))
        assert fmt_us > 15 * unf_us

    def test_bdna_io_replacement_story(self):
        """Replacing formatted with unformatted I/O on a BDNA-sized
        output stream recovers roughly the Table 4 saving (~48 s of a
        ~51 s I/O component)."""
        words = 2_500_000  # ~20 MB of trajectory output
        fmt = XylemFileSystem()
        fmt.open("out", IOMode.FORMATTED)
        for _ in range(50):
            fmt.write("out", np.zeros(words // 50))
        unf = XylemFileSystem()
        unf.open("out", IOMode.UNFORMATTED)
        for _ in range(50):
            unf.write("out", np.zeros(words // 50))
        saved_s = (fmt.stats.io_us - unf.stats.io_us) * 1e-6
        assert saved_s == pytest.approx(47.5, rel=0.05)

    def test_record_overhead_dominates_tiny_records(self, fs):
        fs.open("u", IOMode.UNFORMATTED)
        us = fs.write("u", [1.0])
        assert us == pytest.approx(IOCosts().record_overhead_us + 1.0)

    def test_stats_accumulate(self, fs):
        fs.open("u")
        fs.write("u", [1.0, 2.0])
        fs.read("u")
        assert fs.stats.writes == 1 and fs.stats.reads == 1
        assert fs.stats.words == 4
        assert fs.stats.io_us > 0
