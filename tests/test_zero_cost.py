"""The zero-cost guarantee: monitoring never changes simulated results.

The signal bus promises that attaching any broadcast subscriber — a
ChromeTracer, the standard utilization monitors, a ReportCollector —
changes wall-clock speed only; every cycle count and every rendered
experiment artifact must be bit-identical to the unmonitored run.
"""

import pytest

from repro.core.config import CedarConfig
from repro.core.context import add_context_observer, remove_context_observer
from repro.experiments.kernels_sim import _run
from repro.monitor.metrics import MetricsRegistry
from repro.monitor.monitors import attach_standard_monitors, detach_monitors
from repro.monitor.report import ReportCollector
from repro.monitor.tracer import ChromeTracer


def measure(kernel="CG", n_ces=2, strips=2, prefetch=True):
    """One small kernel simulation on a fresh machine (bypasses the
    process-wide memo cache, which would hide any perturbation)."""
    return _run(CedarConfig(), kernel, n_ces, prefetch, strips)


class TestZeroCost:
    def test_chrome_tracer_does_not_change_cycles(self):
        baseline = measure()
        tracer = ChromeTracer()
        observer = add_context_observer(lambda ctx: tracer.attach(ctx.bus))
        try:
            traced = measure()
        finally:
            remove_context_observer(observer)
            tracer.detach()
        assert len(tracer.events) > 0  # the tracer really was attached
        assert traced == baseline  # cycles, rates, probe metrics: identical

    def test_standard_monitors_do_not_change_cycles(self):
        baseline = measure()
        registry = MetricsRegistry()
        attached = []
        observer = add_context_observer(
            lambda ctx: attached.extend(attach_standard_monitors(ctx.bus, registry))
        )
        try:
            monitored = measure()
        finally:
            remove_context_observer(observer)
            detach_monitors(attached)
        assert len(registry) > 0  # the monitors really saw traffic
        assert monitored == baseline

    def test_span_collector_does_not_change_cycles(self):
        """Request tracing is a pure observer: stitching every span in
        the run must leave all simulated results bit-identical."""
        from repro.monitor.spans import SpanCollector

        baseline = measure()
        collectors = []
        observer = add_context_observer(
            lambda ctx: collectors.append(SpanCollector().attach(ctx.bus))
        )
        try:
            traced = measure()
        finally:
            remove_context_observer(observer)
            for collector in collectors:
                collector.detach()
        assert sum(c.completed for c in collectors) > 0  # spans were stitched
        assert traced == baseline

    def test_sampled_span_collector_does_not_change_cycles(self):
        """Sampling observes through the same cached net.span channels
        and additionally writes the packets' ``trace`` marks — pure
        observational metadata that must leave cycles bit-identical."""
        from repro.monitor.sampling import SampledSpanCollector

        baseline = measure()
        collectors = []
        observer = add_context_observer(
            lambda ctx: collectors.append(
                SampledSpanCollector(every=4).attach(ctx.bus)
            )
        )
        try:
            sampled = measure()
        finally:
            remove_context_observer(observer)
            for collector in collectors:
                collector.detach()
        assert sum(c.completed for c in collectors) > 0
        assert sum(c.sampled_out for c in collectors) > 0  # really thinned
        assert sampled == baseline

    def test_timeline_recorder_does_not_change_cycles(self):
        """Interval sampling rides the engine pulse, which only *reads*
        machine state: a timeline-enabled run must be cycle-bit-identical
        to the bare run, at every metric the experiment reports."""
        from repro.monitor.timeline import TimelineRecorder

        baseline = measure()
        with TimelineRecorder(interval_cycles=64.0) as recorder:
            sampled = measure()
        assert recorder.machines >= 1
        docs = recorder.documents()
        assert any(d["intervals"] > 0 for d in docs)  # sampling happened
        assert any(  # the probes saw real traffic, not a detached pulse
            sum(d["series"]["engine.events"]["values"]) > 0 for d in docs
        )
        assert sampled == baseline

    def test_detached_pulse_leaves_no_residue(self):
        """After a recorder uninstalls, the engine is back on the
        unchecked fast path and a re-run reproduces the bare results."""
        from repro.monitor.timeline import TimelineRecorder

        baseline = measure()
        with TimelineRecorder(interval_cycles=64.0):
            measure()
        assert measure() == baseline

    def test_packet_pool_off_is_bit_identical(self):
        """The packet free list is pure mechanism: recycled and freshly
        allocated packets must drive identical simulations."""
        from repro.network.packet import set_pool_enabled

        pooled = measure()
        try:
            set_pool_enabled(False)
            unpooled = measure()
        finally:
            set_pool_enabled(True)
        assert unpooled == pooled

    def test_unmonitored_emission_sites_are_inert(self):
        """The cached-emission contract: on a machine nobody monitors,
        every pre-resolved span channel has an empty callbacks tuple, so
        each emission site is one falsy truthiness branch — and a run on
        such a machine matches one where the channels were never wired."""
        from repro.core.machine import CedarMachine

        machine = CedarMachine(CedarConfig())
        networks = (machine.forward_network, machine.reverse_network)
        sites = [p for net in networks for p in net.injection_ports]
        sites += [
            link for net in networks for stage in net.stages for link in stage
        ]
        sites += list(machine.gmem.modules)
        assert len(sites) > 8  # ports, stage links, memory modules
        for resource in sites:
            assert resource.span_signal.callbacks == ()

    def test_no_prefetch_path_is_also_unperturbed(self):
        baseline = measure(prefetch=False)
        tracer = ChromeTracer()
        observer = add_context_observer(lambda ctx: tracer.attach(ctx.bus))
        try:
            traced = measure(prefetch=False)
        finally:
            remove_context_observer(observer)
            tracer.detach()
        assert traced == baseline

    def test_experiment_text_is_identical_under_collection(self):
        """A full rendered artifact must not change when every machine it
        builds is instrumented by a ReportCollector."""
        from repro.experiments.characterization import (
            render_characterization,
            run_characterization,
        )

        run_characterization.cache_clear()
        baseline = render_characterization(run_characterization())
        run_characterization.cache_clear()
        with ReportCollector() as collector:
            instrumented = render_characterization(run_characterization())
        run_characterization.cache_clear()
        assert collector.machines >= 1  # collection really happened
        assert instrumented == baseline

    def test_inert_fault_plan_is_bit_identical(self):
        """An all-zero FaultPlan builds no injector: the machine must be
        indistinguishable from one assembled before the faults
        subsystem existed (the zero-cost guarantee, extended)."""
        from repro.faults import FaultPlan

        baseline = measure()
        inert = _run(CedarConfig(faults=FaultPlan(seed=99)), "CG", 2, True, 2)
        assert inert == baseline

    def test_armed_but_zero_rate_injector_is_bit_identical(self):
        """Even an explicitly-installed injector with every rate at zero
        must not perturb the simulation: hooks roll no dice and the
        fault router never fires when nothing is down."""
        from repro.core.machine import CedarMachine
        from repro.faults import FaultInjector, FaultPlan
        from repro.kernels.programs import KERNELS, kernel_program

        def programs():
            return {
                port: kernel_program(KERNELS["CG"], port, 2, prefetch=True)
                for port in range(2)
            }

        bare = CedarMachine(CedarConfig()).run_programs(programs())
        armed = CedarMachine(CedarConfig())
        injector = FaultInjector(FaultPlan()).install(armed)
        assert injector.describe()["sites"] > 0  # hooks really are armed
        assert armed.run_programs(programs()) == bare
        assert injector.stats()["transients"] == 0

    def test_rerun_on_same_machine_is_deterministic(self):
        """Attach/detach cycles leave no residue: a monitored machine,
        reset and re-run unmonitored, reproduces its first run."""
        from repro.core.machine import CedarMachine
        from repro.cluster.ce import AwaitStream, StartPrefetch

        def prog():
            stream = yield StartPrefetch(length=8, stride=1, address=0)
            yield AwaitStream(stream)

        machine = CedarMachine(CedarConfig(), monitor_port=0)
        first = machine.run_programs({0: prog()})
        machine.reset()
        monitors = attach_standard_monitors(machine.bus)
        tracer = ChromeTracer().attach(machine.bus)
        second = machine.run_programs({0: prog()})
        detach_monitors(monitors)
        tracer.detach()
        machine.reset()
        third = machine.run_programs({0: prog()})
        assert first == second == third
