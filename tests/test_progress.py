"""Live fleet progress renderers: transitions, heartbeats, TTY fallback.

The CI-safe :class:`TransitionPrinter` must print exactly one line per
state transition (heartbeats stay silent); the TTY
:class:`FleetProgress` must repaint with ANSI cursor movement; and
:func:`make_progress` must pick the renderer off ``isatty()``.
"""

import io

from repro.monitor.progress import (
    FleetProgress,
    TransitionPrinter,
    make_progress,
)
from repro.monitor.telemetry import make_event


class _FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _lifecycle(name="table2"):
    h = "abc123"
    return {
        "queued": make_event("run_queued", name, h, 1.0),
        "started": make_event("worker_started", name, h, 1.1, pid=9),
        "beat": make_event(
            "heartbeat", name, h, 1.4,
            events_processed=5000, sim_cycles=120.0, events_per_sec=9e5,
        ),
        "retry": make_event(
            "retry", name, h, 2.0, attempt=1,
            error="transient", next_attempt=2, backoff_s=0.5,
        ),
        "failed": make_event("failed", name, h, 3.0, attempt=2, error="kaboom"),
        "done": make_event(
            "completed", name, h, 3.5, elapsed_s=2.4, cached=False
        ),
        "cached": make_event(
            "cache_hit", name, h, 3.6, attempt=0,
            key="abcdef0123456789", shard="ab", verified=True,
        ),
    }


class TestTransitionPrinter:
    def test_one_line_per_transition_heartbeats_silent(self):
        out = io.StringIO()
        printer = TransitionPrinter(out=out, clock=_FakeClock())
        events = _lifecycle()
        for key in ("queued", "started", "beat", "beat", "beat", "done"):
            printer.handle(events[key])
        lines = out.getvalue().splitlines()
        assert len(lines) == 3  # queued, running, done — no beat lines
        assert "queued" in lines[0]
        assert "running" in lines[1]
        assert "done" in lines[2] and "in 2.4s" in lines[2]

    def test_heartbeat_progress_folds_into_next_transition(self):
        out = io.StringIO()
        printer = TransitionPrinter(out=out, clock=_FakeClock())
        events = _lifecycle()
        for key in ("queued", "started", "beat", "retry"):
            printer.handle(events[key])
        last = out.getvalue().splitlines()[-1]
        assert "retrying" in last
        assert "5000 events" in last          # last-known progress
        assert "transient" in last            # the failure reason

    def test_failed_line_carries_error(self):
        out = io.StringIO()
        printer = TransitionPrinter(out=out, clock=_FakeClock())
        events = _lifecycle()
        for key in ("queued", "started", "failed"):
            printer.handle(events[key])
        assert "FAILED: kaboom" in out.getvalue().splitlines()[-1]

    def test_close_prints_summary(self):
        out = io.StringIO()
        printer = TransitionPrinter(out=out, clock=_FakeClock())
        a, b = _lifecycle("table2"), _lifecycle("fig3")
        for events, end in ((a, "done"), (b, "failed")):
            printer.handle(events["queued"])
            printer.handle(events["started"])
            printer.handle(events[end])
        printer.close()
        assert "2 experiments: 1 ok, 1 failed" in out.getvalue()

    def test_cache_hit_counts_as_ok(self):
        out = io.StringIO()
        printer = TransitionPrinter(out=out, clock=_FakeClock())
        printer.handle(_lifecycle()["cached"])
        printer.close()
        assert "1 experiments: 1 ok, 0 failed" in out.getvalue()


class TestFleetProgress:
    def test_repaints_with_ansi_on_transitions(self):
        out = io.StringIO()
        clock = _FakeClock()
        progress = FleetProgress(out=out, clock=clock)
        events = _lifecycle()
        progress.handle(events["queued"])
        progress.handle(events["started"])
        text = out.getvalue()
        assert "\x1b[2K" in text              # clear-line repaint
        assert "\x1b[1F" not in text.split("\x1b[2K")[0]
        assert "experiment" in text           # header row
        assert "running" in text

    def test_heartbeats_animate_but_rate_limited(self):
        out = io.StringIO()
        clock = _FakeClock()
        progress = FleetProgress(out=out, clock=clock)
        events = _lifecycle()
        progress.handle(events["queued"])
        before = out.getvalue()
        progress.handle(events["beat"])       # same instant: suppressed
        assert out.getvalue() == before
        clock.t += 1.0
        progress.handle(events["beat"])       # later: repaints with stats
        assert len(out.getvalue()) > len(before)
        assert "5,000" in out.getvalue()

    def test_close_leaves_final_table(self):
        out = io.StringIO()
        progress = FleetProgress(out=out, clock=_FakeClock())
        events = _lifecycle()
        progress.handle(events["queued"])
        progress.handle(events["started"])
        progress.handle(events["done"])
        progress.close()
        assert "done" in out.getvalue()


class TestMakeProgress:
    def test_pipe_gets_transition_printer(self):
        # StringIO.isatty() is False: the CI-safe fallback
        assert type(make_progress(out=io.StringIO())) is TransitionPrinter

    def test_force_tty_gets_fleet_progress(self):
        assert type(make_progress(out=io.StringIO(), force_tty=True)) \
            is FleetProgress

    def test_force_no_tty_overrides(self):
        class _Tty(io.StringIO):
            def isatty(self):
                return True

        assert type(make_progress(out=_Tty())) is FleetProgress
        assert type(make_progress(out=_Tty(), force_tty=False)) \
            is TransitionPrinter
