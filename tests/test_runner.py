"""Tests for the experiment registry, cache, and parallel driver."""

import pytest

from repro.core.config import CedarConfig
from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    REGISTRY,
    Experiment,
    cache_key,
    cache_load,
    cache_store,
    experiment_names,
    render_all,
    run_all,
    run_experiment,
)


class TestRegistry:
    def test_every_artifact_is_registered(self):
        expected = {
            "topology",
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig3",
            "ppt4",
            "overheads",
            "characterization",
            "scaling",
            "permutations",
            "multiprogramming",
            "ablation-network",
            "ablation-memory",
            "degradation",
            "soak",
        }
        assert set(experiment_names()) == expected
        assert len(expected) == 18

    def test_registry_preserves_insertion_order(self):
        names = experiment_names()
        assert names[0] == "topology"
        assert names[1:7] == [f"table{i}" for i in range(1, 7)]

    def test_fast_kwargs_override(self):
        table2 = REGISTRY["table2"]
        assert table2.arguments(fast=False) == {"strips": 10}
        assert table2.arguments(fast=True) == {"strips": 6}

    def test_experiments_without_fast_mode_keep_kwargs(self):
        table3 = REGISTRY["table3"]
        assert table3.arguments(fast=True) == table3.arguments(fast=False)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            runner_mod.register(
                Experiment("topology", "again", lambda: "")
            )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="no experiment"):
            runner_mod.experiment("nope")
        with pytest.raises(KeyError):
            run_all(names=["nope"])


class TestCacheKey:
    def test_key_is_deterministic(self):
        assert cache_key("table1", {"a_strips": 2}) == cache_key(
            "table1", {"a_strips": 2}
        )

    def test_key_varies_with_kwargs_and_config(self):
        base = cache_key("table1", {"a_strips": 2})
        assert base != cache_key("table1", {"a_strips": 1})
        assert base != cache_key("table2", {"a_strips": 2})
        assert base != cache_key(
            "table1", {"a_strips": 2}, config=CedarConfig(clusters=2)
        )


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        key = cache_key("topology", {})
        assert cache_load(tmp_path, "topology", key) is None
        cache_store(tmp_path, "topology", key, "rendered text", 1.5)
        assert cache_load(tmp_path, "topology", key) == "rendered text"

    def test_entries_live_in_the_sharded_store(self, tmp_path):
        from repro.store import ResultStore

        key = cache_key("topology", {})
        cache_store(tmp_path, "topology", key, "text", 0.0)
        path = ResultStore(tmp_path).entry_path(key)
        assert path.is_file() and path.parent.name == key[:2]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.store import ResultStore

        key = cache_key("topology", {})
        cache_store(tmp_path, "topology", key, "text", 0.0)
        ResultStore(tmp_path).entry_path(key).write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt store entry"):
            assert cache_load(tmp_path, "topology", key) is None


class TestDriver:
    def test_run_experiment_returns_rendered_output(self):
        result = run_experiment("topology")
        assert result.name == "topology"
        assert not result.cached
        assert "Cedar" in result.output

    def test_cached_rerun_replays_identical_output(self, tmp_path):
        cold = run_experiment("overheads", cache_dir=tmp_path)
        warm = run_experiment("overheads", cache_dir=tmp_path)
        assert not cold.cached and warm.cached
        assert warm.output == cold.output

    def test_cache_distinguishes_fast_mode(self, tmp_path):
        # fast kwargs differ for table2, so a fast run must not reuse
        # (or poison) the full-size entry.
        key_full = cache_key("table2", REGISTRY["table2"].arguments(False))
        key_fast = cache_key("table2", REGISTRY["table2"].arguments(True))
        assert key_full != key_fast

    def test_run_all_matches_individual_runs(self, tmp_path):
        names = ["topology", "overheads"]
        batch = run_all(names=names, cache_dir=tmp_path)
        assert [r.name for r in batch] == names
        assert batch[0].output == run_experiment("topology").output
        rendered = render_all(batch)
        assert rendered == batch[0].output + "\n\n" + batch[1].output

    def test_run_all_parallel_matches_serial(self, tmp_path):
        names = ["topology", "overheads", "multiprogramming"]
        serial = run_all(names=names)
        parallel = run_all(names=names, jobs=2)
        assert [r.output for r in parallel] == [r.output for r in serial]

    def test_run_all_mixes_hits_and_misses(self, tmp_path):
        run_experiment("topology", cache_dir=tmp_path)
        results = run_all(names=["topology", "overheads"], cache_dir=tmp_path)
        assert results[0].cached and not results[1].cached
