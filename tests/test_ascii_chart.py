"""Tests for the ASCII chart helper."""

import pytest

from repro.util.ascii_chart import line_chart


class TestLineChart:
    def test_basic_render(self):
        text = line_chart(
            {"speedup": [(1, 1.0), (2, 1.9), (4, 3.5)]},
            title="demo",
        )
        assert text.startswith("demo")
        assert "s = speedup" in text
        assert "|" in text

    def test_marks_appear(self):
        text = line_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "a" in text and "b" in text

    def test_log_x(self):
        text = line_chart(
            {"r": [(1024, 10.0), (1_048_576, 50.0)]}, log_x=True
        )
        assert "1024" in text

    def test_log_x_requires_positive(self):
        with pytest.raises(ValueError):
            line_chart({"r": [(0, 1.0)]}, log_x=True)

    def test_flat_series_ok(self):
        text = line_chart({"c": [(0, 5.0), (10, 5.0)]})
        assert "c" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, width=2)

    def test_labels_in_footer(self):
        text = line_chart(
            {"a": [(0, 0), (1, 1)]}, x_label="N", y_label="MFLOPS"
        )
        assert "x: N" in text and "y: MFLOPS" in text
