"""Tests for cluster shared resources and the concurrency control bus."""

import pytest

from repro.cluster.ce import BlockTransfer, ClusterVectorOp, Compute
from repro.cluster.concurrency_bus import CCBLoop, ConcurrencyBus
from repro.core.config import CedarConfig, ConcurrencyBusConfig
from repro.core.engine import Engine
from repro.core.machine import CedarMachine


class TestConcurrencyBusFunctional:
    def test_concurrent_start_spreads_iterations(self):
        bus = ConcurrencyBus(Engine(), ConcurrencyBusConfig())
        loop = bus.concurrent_start(10)
        claimed = []
        while True:
            chunk = loop.claim()
            if chunk is None:
                break
            claimed.extend(chunk)
        assert claimed == list(range(10))

    def test_chunked_self_scheduling(self):
        loop = CCBLoop(10, chunk=4)
        sizes = []
        while True:
            chunk = loop.claim()
            if chunk is None:
                break
            sizes.append(len(chunk))
        assert sizes == [4, 4, 2]

    def test_completion_tracking(self):
        loop = CCBLoop(3)
        loop.complete(2)
        assert not loop.all_done
        loop.complete(1)
        assert loop.all_done
        with pytest.raises(RuntimeError):
            loop.complete(1)

    def test_costs_counted(self):
        bus = ConcurrencyBus(Engine(), ConcurrencyBusConfig())
        bus.concurrent_start(4)
        bus.claim_cost_cycles()
        bus.join_cost_cycles()
        assert bus.loops_started == 1
        assert bus.claims == 1 and bus.joins == 1
        assert bus.start_cost_cycles == 18

    def test_validation(self):
        with pytest.raises(ValueError):
            CCBLoop(-1)
        with pytest.raises(ValueError):
            CCBLoop(4, chunk=0)


class TestClusterCacheBandwidth:
    def test_single_ce_vector_op_is_compute_bound(self):
        machine = CedarMachine(CedarConfig())
        done = {}

        def prog():
            yield ClusterVectorOp(words=32, cycles_per_word=1.0, startup_cycles=12)
            done["t"] = machine.engine.now

        machine.run_programs({0: prog()})
        # startup + 32 compute cycles, cache streams faster than compute
        assert done["t"] == pytest.approx(44.0, abs=6.0)

    def test_eight_ces_share_cache_bandwidth(self):
        """Eight CEs streaming 1 word/cycle each exactly saturate the
        cache's 8 words/cycle: per-CE time should stay near the solo
        time (the design point of the Alliant cache)."""
        def run(n_ces):
            machine = CedarMachine(CedarConfig())

            def prog():
                for _ in range(8):
                    yield ClusterVectorOp(words=32, cycles_per_word=1.0)

            return machine.run_programs({p: prog() for p in range(n_ces)})

        solo = run(1)
        crowded = run(8)
        assert crowded < solo * 2.2  # mild queueing only

    def test_block_transfer_moves_all_words(self):
        machine = CedarMachine(CedarConfig())
        done = {}

        def prog():
            yield BlockTransfer(words=30, address=0)
            done["t"] = machine.engine.now

        machine.run_programs({0: prog()})
        assert done["t"] > 0
        # 30 words in 3-word chunks -> 10 block reads
        assert machine.gmem.total_reads == 10


class TestPrefetchBufferReuse:
    def test_keep_previous_preserves_data(self):
        """"It is possible to keep prefetched data in that buffer and
        reuse it from there" — RK's double-buffer pattern depends on
        the kept stream staying valid while the next one flies."""
        from repro.cluster.ce import AwaitStream, ConsumeStream, StartPrefetch

        machine = CedarMachine(CedarConfig())
        states = {}

        def prog():
            first = yield StartPrefetch(length=16, stride=1, address=0)
            yield AwaitStream(first)
            second = yield StartPrefetch(
                length=16, stride=1, address=512, keep_previous=True
            )
            # consume the *kept* first stream while the second flies
            yield ConsumeStream(first, cycles_per_word=1.0)
            states["first_valid"] = not first.invalidated
            yield AwaitStream(second)
            states["second_complete"] = second.complete

        machine.run_programs({0: prog()})
        assert states == {"first_valid": True, "second_complete": True}

    def test_without_keep_previous_buffer_invalidated(self):
        from repro.cluster.ce import AwaitStream, StartPrefetch

        machine = CedarMachine(CedarConfig())
        states = {}

        def prog():
            first = yield StartPrefetch(length=8, stride=1, address=0)
            yield AwaitStream(first)
            second = yield StartPrefetch(length=8, stride=1, address=512)
            yield AwaitStream(second)
            states["first_invalidated"] = first.invalidated

        machine.run_programs({0: prog()})
        assert states["first_invalidated"]
