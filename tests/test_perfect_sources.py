"""The human-readable Perfect sketches agree with the profile story."""

import pytest

from repro.perfect.profiles import PERFECT_CODES
from repro.perfect.sources import SKETCHES, expected_verdicts, sketch_program
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE

ALL = sorted(SKETCHES)


class TestSketchCoverage:
    def test_every_code_has_a_sketch(self):
        assert set(SKETCHES) == set(PERFECT_CODES)

    def test_sketches_parse(self):
        for name in ALL:
            program = sketch_program(name)
            program.validate_weights()


class TestSketchVerdicts:
    @pytest.mark.parametrize("name", ALL)
    def test_pipelines_reach_the_documented_verdicts(self, name):
        program = sketch_program(name)
        kap = KAP_PIPELINE.restructure(program)
        auto = AUTOMATABLE_PIPELINE.restructure(program)
        for label, expect_kap, expect_auto in expected_verdicts(name):
            assert kap.verdict_for(label).parallel is expect_kap, (name, label, "kap")
            assert auto.verdict_for(label).parallel is expect_auto, (name, label, "auto")

    @pytest.mark.parametrize("name", ALL)
    def test_every_code_has_an_advanced_obstacle(self, name):
        """Each sketch contains at least one loop only the automatable
        pipeline parallelizes — the Section 3.3 per-code story."""
        verdicts = expected_verdicts(name)
        assert any(not kap and auto for _, kap, auto in verdicts), name

    def test_sketch_and_profile_agree_on_the_obstacle_class(self):
        """The transform unlocking each sketch's obstacle loop matches
        the feature the derived profile assigns."""
        feature_to_transform = {
            "array_private": "array privatization",
            "reduction": "parallel reduction",
            "adv_induction": "advanced induction substitution",
            "runtime_test": "runtime dependence test",
            "save_call": "SAVE/RETURN parallelization",
        }
        for name in ALL:
            profile = PERFECT_CODES[name]
            advanced = [lp for lp in profile.loops if lp.label == "advanced_loops"]
            if not advanced:
                continue
            wanted = feature_to_transform.get(advanced[0].feature)
            if wanted is None:
                continue
            auto = AUTOMATABLE_PIPELINE.restructure(sketch_program(name))
            unlocked_transforms = {
                t
                for v in auto.verdicts
                if v.parallel
                for t in v.transforms
            }
            assert wanted in unlocked_transforms, (name, wanted)
