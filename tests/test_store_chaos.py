"""Chaos-driven recovery tests: every commit point, every fault kind.

The discipline mirrors ``repro.faults``: faults are seeded or scripted,
so every failing scenario replays exactly.  The core property under
test is the acceptance criterion — for *every* injected crash/fault
point, a subsequent ``verify(repair=True)`` returns the store to a
consistent state, reads never serve torn or wrong bytes (checksum
mismatches always miss → recompute), and a fresh ``put`` always
succeeds afterwards.
"""

import warnings

import pytest

from repro.store import FAULT_POINTS, ChaosFS, ResultStore, SimulatedCrash

KEY = "ab" + "cd" * 31
PAYLOAD = {"output": "the rendered artifact", "elapsed_s": 1.25}


def _commit_points(tmp_path):
    """Enumerate the operations one clean put performs, via an inert
    recording ChaosFS."""
    fs = ChaosFS()
    ResultStore(tmp_path / "probe", fs=fs, tmp_grace_s=0.0).put(KEY, PAYLOAD)
    return fs.log


def _occurrences(log):
    """(op, nth) for every operation occurrence in a recorded log."""
    counts = {}
    out = []
    for op, _ in log:
        nth = counts.get(op, 0)
        counts[op] = nth + 1
        out.append((op, nth))
    return out


def test_probe_run_covers_the_whole_commit_protocol(tmp_path):
    ops = {op for op, _ in _commit_points(tmp_path)}
    # lock create, durable temp write, publish rename, dir fsync,
    # lock release: all five protocol steps are visible to chaos
    assert {"create_excl", "write_bytes", "rename", "fsync_dir", "unlink"} <= ops


def _all_scenarios(tmp_path):
    """Every (op occurrence, applicable fault kind) pair one put
    exposes."""
    scenarios = []
    for op, nth in _occurrences(_commit_points(tmp_path)):
        for kind in FAULT_POINTS.get(op, ()):
            scenarios.append((op, nth, kind))
    return scenarios


class TestEveryCommitPointRecovers:
    def test_exhaustive_fault_matrix(self, tmp_path):
        """The acceptance loop: inject each fault at each commit point,
        then prove verify --repair restores consistency and the store
        still round-trips."""
        scenarios = _all_scenarios(tmp_path)
        assert len(scenarios) >= 10  # the matrix is genuinely broad
        for i, (op, nth, kind) in enumerate(scenarios):
            root = tmp_path / f"case-{i}-{op}-{nth}-{kind}"
            fs = ChaosFS(script=[(op, nth, kind)])
            store = ResultStore(
                root, fs=fs, tmp_grace_s=0.0, lock_timeout_s=0.2
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    store.put(KEY, PAYLOAD)
                except (SimulatedCrash, OSError):
                    pass  # the process "died" or the write failed
                assert fs.injected, (op, nth, kind)

                # 1. reads never serve torn/wrong bytes
                got = store.get(KEY)
                assert got is None or got == PAYLOAD, (op, nth, kind)

                # 2. repair restores a consistent store
                report = store.verify(repair=True)
                assert report.consistent, (op, nth, kind, report.issues)

                # 3. and the store is fully serviceable again
                clean = ResultStore(root, tmp_grace_s=0.0)
                assert clean.put(KEY, PAYLOAD) is True, (op, nth, kind)
                assert clean.get(KEY) == PAYLOAD, (op, nth, kind)
                assert clean.verify().consistent

    def test_silent_torn_write_is_caught_by_checksum(self, tmp_path):
        """The lost-fsync scenario: the commit 'succeeds' but the entry
        bytes are a prefix.  Only the payload checksum can catch it —
        and it must, every time."""
        fs = ChaosFS(script=[("write_bytes", 0, "silent_torn")])
        store = ResultStore(tmp_path, fs=fs, tmp_grace_s=0.0)
        store.put(KEY, PAYLOAD)  # no error surfaced
        with pytest.warns(UserWarning, match="corrupt store entry"):
            assert store.get(KEY) is None  # never served
        assert (tmp_path / "quarantine").is_dir()
        assert store.put(KEY, PAYLOAD) and store.get(KEY) == PAYLOAD

    def test_crash_before_rename_leaves_old_entry_intact(self, tmp_path):
        """A re-store crash must preserve the previous committed value
        — the reader sees old or new, never nothing, never torn."""
        store = ResultStore(tmp_path, tmp_grace_s=0.0)
        store.put(KEY, {"output": "v1"})
        fs = ChaosFS(script=[("rename", 0, "crash")])
        chaos_store = ResultStore(tmp_path, fs=fs, tmp_grace_s=0.0)
        with pytest.raises(SimulatedCrash):
            chaos_store.put(KEY, {"output": "v2"})
        assert store.get(KEY) == {"output": "v1"}
        store.verify(repair=True)
        assert store.get(KEY) == {"output": "v1"}

    def test_crash_after_rename_commits_the_new_entry(self, tmp_path):
        store = ResultStore(tmp_path, tmp_grace_s=0.0)
        store.put(KEY, {"output": "v1"})
        fs = ChaosFS(script=[("rename", 0, "crash_after")])
        with pytest.raises(SimulatedCrash):
            ResultStore(tmp_path, fs=fs, tmp_grace_s=0.0).put(
                KEY, {"output": "v2"}
            )
        assert store.get(KEY) == {"output": "v2"}
        assert store.verify(repair=True).consistent

    def test_stale_lock_from_dead_writer_is_recovered(self, tmp_path):
        """A writer that dies holding the lock must not wedge the key:
        repair (or the next writer's staleness check) breaks it."""
        fs = ChaosFS(script=[("create_excl", 0, "crash_after")])
        with pytest.raises(SimulatedCrash):
            ResultStore(tmp_path, fs=fs).put(KEY, PAYLOAD)
        store = ResultStore(tmp_path, tmp_grace_s=0.0)
        assert store.lock_path(KEY).exists()
        report = store.verify(repair=True)
        assert ("stale-lock", "unlocked") in [
            (i.kind, i.action) for i in report.issues
        ]
        assert store.put(KEY, PAYLOAD) and store.get(KEY) == PAYLOAD

    def test_enospc_fails_the_write_but_never_the_store(self, tmp_path):
        fs = ChaosFS(script=[("write_bytes", 0, "enospc")])
        store = ResultStore(tmp_path, fs=fs, tmp_grace_s=0.0)
        with pytest.raises(OSError):
            store.put(KEY, PAYLOAD)
        # graceful failure: the writer cleaned its own debris up
        assert ResultStore(tmp_path, tmp_grace_s=0.0).verify().consistent


class TestSeededChaosSoak:
    def _soak(self, root, seed):
        keys = [f"{i:02x}" + f"{seed % 251:02x}" * 31 for i in range(16)]
        fs = ChaosFS(seed=seed, rate=0.15)
        store = ResultStore(root, fs=fs, tmp_grace_s=0.0, lock_timeout_s=0.1)
        survived = {}
        for round_ in range(3):
            for i, key in enumerate(keys):
                payload = {"key_i": i, "round": round_}
                try:
                    if store.put(key, payload):
                        survived[key] = payload
                except (SimulatedCrash, OSError):
                    pass
                got = store.get(key)
                if got is not None:
                    # served values are always some value actually put
                    assert got.get("key_i") == i
        return fs, store, survived

    def test_random_chaos_always_repairs_clean(self, tmp_path):
        """Seeded random fault storms: whatever the storm did, repair
        converges and every surviving entry reads back verified."""
        for seed in (1, 7, 2024):
            root = tmp_path / f"seed-{seed}"
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                fs, _, _ = self._soak(root, seed)
                assert fs.injected  # the storm actually did something
                clean = ResultStore(root, tmp_grace_s=0.0)
                report = clean.verify(repair=True)
                assert report.consistent, (seed, report.issues)
                for key in clean.keys():
                    assert clean.get(key) is not None, (seed, key)
                assert clean.verify().consistent

    def test_same_seed_injects_identical_faults(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fs_a, _, _ = self._soak(tmp_path / "a", 99)
            fs_b, _, _ = self._soak(tmp_path / "b", 99)
        strip = lambda inj: [(op, nth, kind) for op, nth, kind, _ in inj]
        assert strip(fs_a.injected) == strip(fs_b.injected)
        assert fs_a.injected  # non-trivial plan


class TestChaosHarness:
    def test_script_validates_op_and_kind(self):
        with pytest.raises(ValueError, match="unknown chaos operation"):
            ChaosFS(script=[("frobnicate", 0, "crash")])
        with pytest.raises(ValueError, match="not applicable"):
            ChaosFS(script=[("rename", 0, "enospc")])

    def test_inert_wrapper_just_records(self, tmp_path):
        fs = ChaosFS()
        store = ResultStore(tmp_path, fs=fs)
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD
        assert fs.injected == [] and len(fs.log) > 0
