"""Time-resolved observability: interval timelines and the recorder.

The MetricTimeline contract: delta series conserve their cumulative
totals across any number of power-of-two coalesces, gauge series keep
peaks, memory stays bounded at ``max_intervals`` no matter how long the
run, and a pulse-driven timeline never perturbs the simulation it
watches (the bit-identity half lives in ``test_zero_cost.py``).
"""

import json

import pytest

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.kernels.programs import KERNELS, kernel_program
from repro.monitor.metrics import MetricsRegistry
from repro.monitor.timeline import (
    DEFAULT_INTERVAL_CYCLES,
    MAX_INTERVALS,
    MetricTimeline,
    SeriesProbe,
    TimelineRecorder,
    machine_probes,
    validate_timeline,
    validate_timeline_file,
)


def _counter_probe(state, name="events"):
    return SeriesProbe(name, "delta", lambda: state["n"])


def _gauge_probe(state, name="depth"):
    return SeriesProbe(name, "gauge", lambda: state["d"])


def run_kernels(machine, ces=2, strips=2):
    programs = {
        port: kernel_program(KERNELS["CG"], port, strips, prefetch=True)
        for port in range(ces)
    }
    return machine.run_programs(programs)


class TestSeriesProbe:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown series kind"):
            SeriesProbe("x", "rate", lambda: 0.0)


class TestSampling:
    def test_delta_series_stores_interval_increase(self):
        state = {"n": 0}
        tl = MetricTimeline([_counter_probe(state)], interval_cycles=10.0)
        state["n"] = 4
        tl.maybe_sample(10.0)
        state["n"] = 9
        tl.maybe_sample(20.0)
        assert tl.series("events") == [4.0, 5.0]
        assert tl.edges() == [10.0, 20.0]

    def test_gauge_series_stores_instantaneous_reading(self):
        state = {"d": 0}
        tl = MetricTimeline([_gauge_probe(state)], interval_cycles=10.0)
        state["d"] = 7
        tl.maybe_sample(10.0)
        state["d"] = 2
        tl.maybe_sample(20.0)
        assert tl.series("depth") == [7.0, 2.0]

    def test_no_sample_before_first_edge(self):
        tl = MetricTimeline([_counter_probe({"n": 0})], interval_cycles=10.0)
        tl.maybe_sample(9.999)
        assert tl.intervals == 0

    def test_event_gap_folds_into_one_wide_interval(self):
        """A long quiet stretch yields one wider interval, not a run of
        fabricated empty ones: the next edge re-anchors on the grid."""
        state = {"n": 0}
        tl = MetricTimeline([_counter_probe(state)], interval_cycles=10.0)
        state["n"] = 3
        tl.maybe_sample(57.0)  # skipped edges 10..50 fold into (0, 57]
        assert tl.edges() == [57.0]
        assert tl.series("events") == [3.0]
        state["n"] = 5
        tl.maybe_sample(60.0)  # re-anchored next edge is 60, not 67
        assert tl.edges() == [57.0, 60.0]

    def test_finalize_closes_partial_tail_and_is_idempotent(self):
        state = {"n": 0}
        tl = MetricTimeline([_counter_probe(state)], interval_cycles=10.0)
        state["n"] = 4
        tl.maybe_sample(10.0)
        state["n"] = 6
        tl.finalize(13.5)
        assert tl.edges() == [10.0, 13.5]
        assert sum(tl.series("events")) == 6.0
        tl.finalize(13.5)  # no-op: nothing advanced
        assert tl.edges() == [10.0, 13.5]

    def test_duplicate_probe_names_rejected(self):
        probes = [_counter_probe({"n": 0}), _counter_probe({"n": 0})]
        with pytest.raises(ValueError, match="duplicate series names"):
            MetricTimeline(probes)

    def test_validation_of_construction_parameters(self):
        with pytest.raises(ValueError):
            MetricTimeline([], interval_cycles=0.0)
        with pytest.raises(ValueError):
            MetricTimeline([], max_intervals=1)


class TestCoalescing:
    def test_delta_totals_conserved_and_memory_bounded(self):
        """Drive 10x the interval bound through the timeline: the count
        stays at/below ``max_intervals``, the nominal width doubles per
        coalesce, and the delta total telescopes exactly."""
        state = {"n": 0}
        tl = MetricTimeline(
            [_counter_probe(state)], interval_cycles=1.0, max_intervals=8
        )
        for t in range(1, 81):
            state["n"] = t * 3
            tl.maybe_sample(float(t))
        tl.finalize(80.0)
        assert tl.intervals <= 8
        assert tl.coalesces >= 1
        assert tl.interval_cycles == 2.0 ** tl.coalesces
        assert sum(tl.series("events")) == 240.0  # nothing lost
        edges = tl.edges()
        assert edges == sorted(edges) and edges[-1] == 80.0

    def test_gauge_coalesce_keeps_peak(self):
        state = {"d": 0}
        tl = MetricTimeline(
            [_gauge_probe(state)], interval_cycles=1.0, max_intervals=4
        )
        readings = [1, 9, 2, 3, 8, 1, 0, 5]
        for t, d in enumerate(readings, start=1):
            state["d"] = d
            tl.maybe_sample(float(t))
        assert tl.intervals <= 4
        assert max(tl.series("depth")) == 9.0  # the peak survives merging

    def test_run_of_any_length_holds_bounded_intervals(self):
        state = {"n": 0}
        tl = MetricTimeline(
            [_counter_probe(state)], interval_cycles=1.0, max_intervals=16
        )
        for t in range(1, 5001):
            state["n"] = t
            tl.maybe_sample(float(t))
        tl.finalize(5000.0)  # close the post-coalesce partial tail
        assert tl.intervals <= 16
        assert sum(tl.series("events")) == 5000.0


class TestRegistryAggregation:
    def test_indexed_instruments_collapse_and_sum(self):
        reg = MetricsRegistry()
        reg.counter("fwd.s0[0].words").inc(3)
        reg.counter("fwd.s0[1].words").inc(4)
        reg.time_weighted("gm[0].queue").update(2.0, 0.0)
        reg.time_weighted("gm[1].queue").update(5.0, 0.0)
        tl = MetricTimeline([], interval_cycles=10.0, registry=reg)
        tl.maybe_sample(10.0)
        assert tl.series("reg.fwd.s0.words") == [7.0]  # delta, summed
        assert tl.series("reg.gm.queue") == [7.0]  # gauge, summed

    def test_late_instrument_is_zero_backfilled(self):
        reg = MetricsRegistry()
        tl = MetricTimeline([], interval_cycles=10.0, registry=reg)
        tl.maybe_sample(10.0)
        reg.counter("net.drops").inc(2)
        tl.maybe_sample(20.0)
        assert tl.series("reg.net.drops") == [0.0, 2.0]


class TestMachineProbes:
    def test_probe_set_covers_the_standard_subsystems(self):
        machine = CedarMachine(CedarConfig())
        names = {p.name for p in machine_probes(machine.ctx)}
        assert "engine.events" in names and "engine.pending" in names
        assert any(".inject.queued_words" in n for n in names)
        assert any(".s0.busy" in n for n in names)
        assert any(n.endswith(".queued_pkts") for n in names)

    def test_pulse_driven_run_sees_real_traffic(self):
        machine = CedarMachine(CedarConfig())
        tl = MetricTimeline(
            machine_probes(machine.ctx), interval_cycles=64.0
        )
        machine.engine.attach_pulse(tl.pulse)
        run_kernels(machine)
        machine.engine.detach_pulse()
        tl.finalize(machine.engine.now)
        assert tl.intervals > 1
        events = tl.series("engine.events")
        assert sum(events) == machine.engine.events_processed
        assert any(v > 0 for v in tl.series("net.fwd.words"))


class TestTimelineRecorder:
    def test_records_every_machine_with_deferred_probes(self):
        """Context observers fire before machine assembly; the recorder
        must still see the full probe set (deferred factory), and its
        documents must validate."""
        with TimelineRecorder(interval_cycles=64.0) as recorder:
            machine = CedarMachine(CedarConfig())
            run_kernels(machine)
        assert recorder.machines == 1
        (doc,) = recorder.documents()
        n_series, n_intervals = validate_timeline(doc)
        assert n_series > 2  # engine + network + memory probes resolved
        assert n_intervals > 0
        assert machine.engine._pulse is None  # uninstall detached it

    def test_defaults_match_module_constants(self):
        recorder = TimelineRecorder()
        assert recorder.interval_cycles == DEFAULT_INTERVAL_CYCLES
        assert recorder.max_intervals == MAX_INTERVALS


class TestValidation:
    def _doc(self):
        state = {"n": 0}
        tl = MetricTimeline([_counter_probe(state)], interval_cycles=10.0)
        state["n"] = 5
        tl.maybe_sample(10.0)
        return tl.to_dict()

    def test_good_document_validates(self):
        assert validate_timeline(self._doc()) == (1, 1)

    def test_bad_version_rejected(self):
        doc = self._doc()
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            validate_timeline(doc)

    def test_nonmonotonic_edges_rejected(self):
        doc = self._doc()
        doc["edges"] = [10.0, 10.0]
        doc["intervals"] = 2
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_timeline(doc)

    def test_series_length_mismatch_rejected(self):
        doc = self._doc()
        doc["series"]["events"]["values"] = [1.0, 2.0]
        with pytest.raises(ValueError, match="values for"):
            validate_timeline(doc)

    def test_nan_value_rejected(self):
        doc = self._doc()
        doc["series"]["events"]["values"] = [float("nan")]
        with pytest.raises(ValueError, match="non-numeric"):
            validate_timeline(doc)

    def test_file_validation_handles_single_and_bundle(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(json.dumps(self._doc()))
        assert validate_timeline_file(single) == (1, 1)
        bundle = tmp_path / "many.json"
        bundle.write_text(json.dumps({"machines": [self._doc(), self._doc()]}))
        assert validate_timeline_file(bundle) == (2, 2)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"machines": []}))
        with pytest.raises(ValueError, match="no timeline documents"):
            validate_timeline_file(empty)
