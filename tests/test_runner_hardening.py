"""Hardened experiment runner: crash isolation, timeouts, retries,
corrupt-cache recovery, and partial results.

``run_all`` must never lose the whole batch to one bad artifact: a
worker that raises, dies, or hangs yields a failed
:class:`ExperimentResult` (error set, empty output) while every other
experiment completes normally, and the CLI surfaces the partial batch
with a nonzero exit.
"""

import os
import time
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main
from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    Experiment,
    cache_key,
    cache_load_entry,
    cache_store,
    render_all,
    run_all,
    run_experiment,
)


def _boom():
    raise RuntimeError("kaboom")


def _hard_crash():
    os._exit(17)


def _sleep_forever():
    time.sleep(30)
    return "never"


_flaky_calls = {"n": 0}


def _flaky_inline(succeed_on=3):
    _flaky_calls["n"] += 1
    if _flaky_calls["n"] < succeed_on:
        raise RuntimeError(f"attempt {_flaky_calls['n']} fails")
    return "flaky ok"


def _flaky_file(path, succeed_on=2):
    marker = Path(path)
    n = int(marker.read_text()) + 1 if marker.exists() else 1
    marker.write_text(str(n))
    if n < succeed_on:
        raise RuntimeError("transient")
    return "file flaky ok"


@pytest.fixture
def scratch_registry():
    """Register throwaway experiments; deregister them afterwards."""
    added = []

    def add(experiment):
        runner_mod.register(experiment)
        added.append(experiment.name)
        return experiment

    yield add
    for name in added:
        runner_mod.REGISTRY.pop(name, None)


class TestCrashIsolation:
    def test_raising_worker_yields_partial_results(self, scratch_registry):
        scratch_registry(Experiment("boom", "always raises", _boom))
        results = run_all(names=["topology", "boom", "overheads"], jobs=2)
        by_name = {r.name: r for r in results}
        assert [r.name for r in results] == ["topology", "boom", "overheads"]
        assert by_name["topology"].ok and by_name["overheads"].ok
        failed = by_name["boom"]
        assert not failed.ok and failed.output == ""
        assert failed.error == "RuntimeError: kaboom"
        assert f"[boom FAILED: {failed.error}]" in render_all(results)

    def test_hard_crash_is_contained_to_its_artifact(self, scratch_registry):
        scratch_registry(Experiment("hard-crash", "calls os._exit", _hard_crash))
        results = run_all(names=["hard-crash", "topology"], jobs=2)
        crashed, alive = results
        assert crashed.error == "worker crashed (exit 17)"
        assert alive.ok and "Cedar" in alive.output

    def test_run_experiment_still_raises(self, scratch_registry):
        # the single-experiment API keeps its loud contract; the CLI's
        # one-line error handling sits above it.
        scratch_registry(Experiment("boom2", "always raises", _boom))
        with pytest.raises(RuntimeError, match="kaboom"):
            run_experiment("boom2")


class TestTimeouts:
    def test_hung_worker_is_terminated(self, scratch_registry):
        scratch_registry(Experiment("sleeper", "hangs for 30s", _sleep_forever))
        start = time.perf_counter()
        results = run_all(names=["sleeper"], timeout_s=1.0)
        assert time.perf_counter() - start < 15.0
        (result,) = results
        assert result.error == "timeout after 1s"

    def test_timeout_forces_isolation_even_at_one_job(self, scratch_registry):
        # jobs=1 normally runs inline (no subprocess); a timeout needs a
        # killable worker, and healthy experiments still succeed there.
        results = run_all(names=["topology"], jobs=1, timeout_s=60.0)
        assert results[0].ok and "Cedar" in results[0].output


class TestRetries:
    def test_inline_retries_until_success(self, scratch_registry):
        _flaky_calls["n"] = 0
        scratch_registry(Experiment("flaky", "fails twice", _flaky_inline))
        (result,) = run_all(names=["flaky"], retries=2, retry_backoff_s=0.01)
        assert result.ok and result.output == "flaky ok"
        assert result.attempts == 3

    def test_inline_retries_exhausted(self, scratch_registry):
        scratch_registry(Experiment("boom3", "always raises", _boom))
        (result,) = run_all(names=["boom3"], retries=1, retry_backoff_s=0.01)
        assert not result.ok and result.attempts == 2
        assert result.error == "RuntimeError: kaboom"

    def test_isolated_retries_until_success(self, scratch_registry, tmp_path):
        marker = tmp_path / "attempts"
        scratch_registry(
            Experiment(
                "flaky-file",
                "fails on first attempt",
                _flaky_file,
                kwargs={"path": str(marker)},
            )
        )
        (result,) = run_all(
            names=["flaky-file"], jobs=2, retries=1, retry_backoff_s=0.01
        )
        assert result.ok and result.output == "file flaky ok"
        assert result.attempts == 2 and marker.read_text() == "2"


def _entry_path(cache_dir, key):
    from repro.store import ResultStore

    return ResultStore(cache_dir).entry_path(key)


class TestCacheHardening:
    def test_truncated_entry_warns_and_misses(self, tmp_path):
        key = cache_key("topology", {})
        cache_store(tmp_path, "topology", key, "text", 0.0)
        _entry_path(tmp_path, key).write_text('{"truncated')
        with pytest.warns(UserWarning, match="corrupt store entry"):
            assert cache_load_entry(tmp_path, "topology", key) is None

    def test_wrong_shape_entry_warns_and_misses(self, tmp_path):
        key = cache_key("topology", {})
        cache_store(tmp_path, "topology", key, "text", 0.0)
        # valid JSON, not an entry document
        _entry_path(tmp_path, key).write_text("[1, 2, 3]")
        with pytest.warns(UserWarning, match="corrupt store entry"):
            assert cache_load_entry(tmp_path, "topology", key) is None

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        key = cache_key("topology", {})
        assert cache_load_entry(tmp_path, "topology", key) is None

    def test_corrupt_entry_is_recomputed_and_healed(self, tmp_path):
        run_experiment("topology", cache_dir=tmp_path)
        key = cache_key("topology", {})
        _entry_path(tmp_path, key).write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt store entry"):
            recomputed = run_experiment("topology", cache_dir=tmp_path)
        assert not recomputed.cached and "Cedar" in recomputed.output
        # the corrupt original was quarantined, not destroyed
        assert list((tmp_path / "quarantine").iterdir())
        healed = run_experiment("topology", cache_dir=tmp_path)
        assert healed.cached and healed.output == recomputed.output

    def test_store_is_atomic(self, tmp_path):
        key = cache_key("topology", {})
        cache_store(tmp_path, "topology", key, "text", 0.0)
        assert not list(tmp_path.rglob("*.tmp"))
        assert not list(tmp_path.rglob("*.lock"))

    def test_legacy_flat_entry_resharded_on_first_touch(self, tmp_path):
        import json

        from repro.experiments.runner import (
            CACHE_VERSION,
            LEGACY_CACHE_VERSION,
            cache_lookup,
        )

        legacy_key = cache_key("topology", {}, version=LEGACY_CACHE_VERSION)
        flat = tmp_path / f"topology.{legacy_key[:16]}.json"
        flat.write_text(json.dumps({
            "key": legacy_key,
            "experiment": "topology",
            "output": "legacy rendered text",
            "elapsed_s": 1.0,
            "cache_version": LEGACY_CACHE_VERSION,
        }))
        key = cache_key("topology", {})
        hit = cache_lookup(tmp_path, "topology", key, legacy_key=legacy_key)
        assert hit is not None and hit.migrated and hit.verified
        assert hit.entry["output"] == "legacy rendered text"
        assert hit.entry["cache_version"] == CACHE_VERSION
        assert not flat.exists()  # re-homed into the sharded store
        # second touch serves straight from the shard, bit-identical
        again = cache_lookup(tmp_path, "topology", key, legacy_key=legacy_key)
        assert not again.migrated
        assert again.entry["output"] == "legacy rendered text"


class TestHardenedCLI:
    def test_run_all_flags_parse(self):
        args = build_parser().parse_args(
            ["run-all", "topology", "fig3", "--timeout", "5", "--retries", "2"]
        )
        assert args.names == ["topology", "fig3"]
        assert args.timeout == 5.0 and args.retries == 2

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["run-all", "nonexistent"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nonexistent" in err

    def test_failed_run_exits_nonzero_with_partial_output(
        self, scratch_registry, capsys
    ):
        scratch_registry(Experiment("boom4", "always raises", _boom))
        assert main(["run-all", "topology", "boom4", "--no-reports"]) == 1
        captured = capsys.readouterr()
        assert "Cedar" in captured.out  # the healthy artifact printed
        assert "FAILED after 1 attempt(s)" in captured.out
        assert "[run-all] FAILED boom4: RuntimeError: kaboom" in captured.err

    def test_healthy_batch_exits_zero(self, capsys):
        assert main(["run-all", "topology", "--no-reports"]) == 0
        assert "Cedar" in capsys.readouterr().out
