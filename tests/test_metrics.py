"""Tests for the judging-parallelism metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.bands import (
    Band,
    acceptable_threshold,
    band_for_efficiency,
    band_for_speedup,
    classify,
    high_threshold,
)
from repro.metrics.ppt import (
    ppt1_delivered_performance,
    ppt2_stable_performance,
    ppt3_restructuring_bands,
    ppt4_scalability,
)
from repro.metrics.stability import (
    exclusions_for_stability,
    instability,
    stability,
    stability_with_exclusions,
)


class TestBands:
    def test_thresholds_for_cedar(self):
        assert high_threshold(32) == 16.0
        assert acceptable_threshold(32) == pytest.approx(3.2)

    def test_thresholds_for_ymp(self):
        assert high_threshold(8) == 4.0
        assert acceptable_threshold(8) == pytest.approx(8 / 6)

    def test_band_classification(self):
        assert band_for_speedup(20, 32) is Band.HIGH
        assert band_for_speedup(10, 32) is Band.INTERMEDIATE
        assert band_for_speedup(2, 32) is Band.UNACCEPTABLE

    def test_band_boundaries_inclusive(self):
        assert band_for_speedup(16.0, 32) is Band.HIGH
        assert band_for_speedup(3.2, 32) is Band.INTERMEDIATE

    def test_efficiency_form(self):
        assert band_for_efficiency(0.5, 32) is Band.HIGH
        assert band_for_efficiency(0.11, 32) is Band.INTERMEDIATE
        assert band_for_efficiency(0.05, 32) is Band.UNACCEPTABLE

    def test_classify_partitions(self):
        bands = classify([("a", 20), ("b", 10), ("c", 1)], 32)
        assert bands[Band.HIGH] == ["a"]
        assert bands[Band.INTERMEDIATE] == ["b"]
        assert bands[Band.UNACCEPTABLE] == ["c"]

    def test_small_machine_rejected(self):
        with pytest.raises(ValueError):
            band_for_speedup(1, 1)

    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_every_speedup_gets_exactly_one_band(self, s):
        assert band_for_speedup(s, 32) in Band


class TestStability:
    def test_definition_min_over_max(self):
        assert stability([1.0, 2.0, 4.0]) == pytest.approx(0.25)
        assert instability([1.0, 2.0, 4.0]) == pytest.approx(4.0)

    def test_exclusion_removes_worst_outlier(self):
        # excluding the 0.1 outlier leaves 2..4
        st_, survivors = stability_with_exclusions([0.1, 2.0, 3.0, 4.0], 1)
        assert st_ == pytest.approx(0.5)
        assert survivors == [2.0, 3.0, 4.0]

    def test_exclusions_split_optimally(self):
        # best removal is one from each end
        values = [0.1, 1.0, 2.0, 100.0]
        st_, survivors = stability_with_exclusions(values, 2)
        assert survivors == [1.0, 2.0]
        assert st_ == pytest.approx(0.5)

    def test_instability_monotone_in_exclusions(self):
        values = [0.5, 1.0, 3.0, 9.0, 30.0]
        ins = [instability(values, e) for e in range(3)]
        assert ins[0] >= ins[1] >= ins[2]

    def test_exclusions_for_threshold(self):
        # In = 60; dropping both extremes reaches In = 3
        values = [0.5, 1.0, 2.0, 3.0, 30.0]
        assert exclusions_for_stability(values, threshold=0.2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            stability([1.0, -1.0])
        with pytest.raises(ValueError):
            stability([1.0, 2.0], exclusions=1)
        with pytest.raises(ValueError):
            stability_with_exclusions([1.0, 2.0], -1)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=3, max_size=12),
        st.integers(min_value=0, max_value=2),
    )
    def test_stability_in_unit_interval(self, values, e):
        if len(values) - e < 2:
            return
        s = stability(values, e)
        assert 0 < s <= 1.0

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=4, max_size=12))
    def test_exclusion_never_hurts(self, values):
        assert stability(values, 1) >= stability(values, 0) - 1e-12


class TestPPT1:
    def test_majority_acceptable_passes(self):
        res = ppt1_delivered_performance(
            "m", {"a": 20.0, "b": 10.0, "c": 1.0}, processors=32
        )
        assert res.passes
        assert res.bands[Band.HIGH] == ["a"]

    def test_majority_unacceptable_fails(self):
        res = ppt1_delivered_performance(
            "m", {"a": 1.0, "b": 1.5, "c": 20.0}, processors=32
        )
        assert not res.passes


class TestPPT2:
    def test_stable_system_passes(self):
        res = ppt2_stable_performance("m", [1.0, 2.0, 3.0, 4.0])
        assert res.passes and res.exceptions_needed == 0

    def test_two_exception_system_passes(self):
        res = ppt2_stable_performance("m", [0.01, 1.0, 2.0, 3.0, 100.0])
        assert res.exceptions_needed == 2 and res.passes

    def test_hopeless_system_fails(self):
        values = [10.0 ** k for k in range(8)]
        res = ppt2_stable_performance("m", values, max_exceptions=3)
        assert not res.passes


class TestPPT3:
    def test_counts(self):
        res = ppt3_restructuring_bands(
            "m", {"a": 0.6, "b": 0.2, "c": 0.01}, processors=32
        )
        assert res.counts == (1, 1, 1)


class TestPPT4:
    def test_grid_classification_and_stability(self):
        speedups = {(32, 1000): 20.0, (32, 100): 5.0}
        mflops = {(32, 1000): 48.0, (32, 100): 34.0}
        res = ppt4_scalability("cedar", speedups, mflops)
        assert res.grid[(32, 1000)] is Band.HIGH
        assert res.grid[(32, 100)] is Band.INTERMEDIATE
        assert res.size_instability[32] == pytest.approx(48.0 / 34.0)
        assert res.passes()

    def test_unacceptable_point_fails(self):
        res = ppt4_scalability(
            "m", {(32, 10): 1.0}, {(32, 10): 1.0, (32, 20): 10.0}
        )
        assert not res.passes()
