"""Online quantile sketches and exemplar reservoirs: accuracy bounds,
merge algebra, determinism, and serialization."""

import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CedarConfig
from repro.core.machine import CedarMachine
from repro.cluster.ce import AwaitStream, GlobalLoad, StartPrefetch
from repro.monitor.sketch import (
    DEFAULT_RELATIVE_ERROR,
    ExemplarReservoir,
    QuantileSketch,
    SKETCH_VERSION,
)
from repro.monitor.spans import SpanCollector


def exact_quantile(values, q):
    """The order statistic both backends estimate: ``sorted[rank - 1]``
    with ``rank = ceil(q * n)`` (floored at 1), i.e. the smallest sample
    whose cumulative count reaches ``q * n``."""
    ordered = sorted(values)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


def assert_within_bound(sketch, values, q):
    exact = exact_quantile(values, q)
    est = sketch.quantile(q)
    if exact == 0.0:
        assert est == 0.0
    else:
        rel = abs(est - exact) / abs(exact)
        # the DDSketch bound is alpha exactly (bucket-boundary samples
        # report the adjacent midpoint at precisely alpha); leave room
        # only for float noise in the log/pow round trip.
        assert rel <= sketch.relative_error * (1.0 + 1e-9) + 1e-12


positive_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=400,
)


class TestQuantileAccuracy:
    @given(
        values=positive_samples,
        q=st.floats(min_value=0.0, max_value=1.0),
        alpha=st.sampled_from([0.005, 0.01, 0.05]),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantiles_within_relative_error_of_exact(self, values, q, alpha):
        sketch = QuantileSketch(relative_error=alpha)
        for value in values:
            sketch.record(value)
        assert_within_bound(sketch, values, q)

    def test_workload_latencies_within_bound(self):
        """The bound holds on real tier-1 workload latencies (the exact
        population a buffered collector would have retained), at every
        quantile column the analyses print."""
        latencies = _workload_latencies()
        assert len(latencies) >= 100
        sketch = QuantileSketch(relative_error=DEFAULT_RELATIVE_ERROR)
        for value in latencies:
            sketch.record(value)
        assert sketch.count == len(latencies)
        assert sketch.sum == pytest.approx(sum(latencies), rel=1e-12)
        assert sketch.min == min(latencies)
        assert sketch.max == max(latencies)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0):
            assert_within_bound(sketch, latencies, q)

    def test_exact_moments_are_exact(self):
        sketch = QuantileSketch()
        values = [3.25, 1.5, 9.75, 1.5]
        for value in values:
            sketch.record(value)
        assert sketch.mean() == pytest.approx(sum(values) / 4, abs=1e-12)
        assert (sketch.min, sketch.max) == (1.5, 9.75)

    def test_zero_and_negative_values_report_as_zero(self):
        sketch = QuantileSketch()
        for value in (0.0, -1.0, 0.0, 5.0):
            sketch.record(value)
        assert sketch.count == 4
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.01)

    def test_misuse_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_buckets=1)
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)  # empty
        with pytest.raises(ValueError):
            sketch.mean()
        sketch.record(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)


class TestMerge:
    @given(values=positive_samples, cut=st.integers(min_value=0, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_merge_of_halves_equals_whole(self, values, cut):
        cut = min(cut, len(values))
        whole = QuantileSketch()
        left, right = QuantileSketch(), QuantileSketch()
        for value in values:
            whole.record(value)
        for value in values[:cut]:
            left.record(value)
        for value in values[cut:]:
            right.record(value)
        merged = left.merge(right)
        merged_doc, whole_doc = merged.to_dict(), whole.to_dict()
        # float addition is not associative: merging two half-sums can
        # differ from sequential accumulation by one ulp, so `sum` is
        # compared approximately; everything else must match exactly.
        assert merged_doc.pop("sum") == pytest.approx(whole_doc.pop("sum"))
        assert merged_doc == whole_doc

    def test_merge_is_associative(self):
        parts = ([1.0, 2.0, 400.0], [3.0, 90.0], [0.5, 7.0, 7.0, 1e6])

        def sketch_of(values):
            s = QuantileSketch()
            for v in values:
                s.record(v)
            return s

        a, b, c = (sketch_of(p) for p in parts)
        left = sketch_of(parts[0]).merge(sketch_of(parts[1])).merge(c.copy())
        right = a.copy().merge(sketch_of(parts[1]).merge(sketch_of(parts[2])))
        whole = sketch_of([v for part in parts for v in part])
        assert left.to_dict() == right.to_dict() == whole.to_dict()

    def test_merge_requires_matching_relative_error(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.01).merge(
                QuantileSketch(relative_error=0.02)
            )


class TestSerialization:
    def test_round_trip_is_exact(self):
        sketch = QuantileSketch()
        for value in (0.0, 1.5, 1.5, 80.0, 1e7):
            sketch.record(value)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        for q in (0.1, 0.5, 0.99):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_version_is_checked(self):
        payload = QuantileSketch().to_dict()
        assert payload["version"] == SKETCH_VERSION
        payload["version"] = 99
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(payload)


class TestBucketCap:
    def test_collapse_preserves_the_upper_tail(self):
        """Past the bucket cap the *lowest* buckets collapse: memory is
        bounded and only the extreme-low quantiles lose accuracy."""
        sketch = QuantileSketch(relative_error=0.01, max_buckets=32)
        values = [math.pow(10.0, i / 25.0) for i in range(2000)]
        for value in values:
            sketch.record(value)
        assert sketch.collapsed
        assert sketch.bucket_count() <= 32
        # ranks above the collapsed spill keep the alpha guarantee
        for q in (0.99, 1.0):
            assert_within_bound(sketch, values, q)
        # collapsed quantiles are over-estimates, never under
        for q in (0.01, 0.5, 0.95):
            assert sketch.quantile(q) >= exact_quantile(values, q)


def _span(request_id, latency, birth=0.0):
    return SimpleNamespace(request_id=request_id, latency=latency, birth=birth)


class TestExemplarReservoir:
    def test_retains_the_k_slowest_completes(self):
        reservoir = ExemplarReservoir(k=4, seed=0)
        for rid in range(100):
            reservoir.offer_complete(_span(rid, latency=float(rid % 50)))
        kept = reservoir.slowest()
        assert [s.latency for s in kept] == [49.0, 49.0, 48.0, 48.0]
        assert reservoir.offered_complete == 100

    def test_retains_the_k_most_recent_incompletes(self):
        reservoir = ExemplarReservoir(k=3, seed=0)
        for rid in range(20):
            reservoir.offer_incomplete(_span(rid, 0.0, birth=float(rid)))
        assert [s.birth for s in reservoir.incompletes()] == [19.0, 18.0, 17.0]
        assert len(reservoir) == 3

    def test_equal_latency_retention_is_seed_deterministic(self):
        """Two reservoirs with the same seed retain the same subset of
        an all-equal-latency population in the same order; the subset is
        a pure function of (seed, request ids), not offer order."""

        def retained(seed, order):
            reservoir = ExemplarReservoir(k=8, seed=seed)
            for rid in order:
                reservoir.offer_complete(_span(rid, latency=5.0))
            return [s.request_id for s in reservoir.slowest()]

        ids = list(range(64))
        assert retained(7, ids) == retained(7, ids)
        assert retained(7, ids) == retained(7, list(reversed(ids)))
        assert retained(7, ids) != ids[:8]  # not simply first-k
        sets = {tuple(retained(seed, ids)) for seed in range(4)}
        assert len(sets) > 1  # the seed actually perturbs retention

    def test_misuse_raises(self):
        with pytest.raises(ValueError):
            ExemplarReservoir(k=0)


def _workload_latencies():
    """End-to-end request latencies from a small tier-1 workload run,
    recorded by the buffered collector (the exact population)."""

    def prefetcher(base):
        def program():
            stream = yield StartPrefetch(length=48, stride=1, address=base)
            yield AwaitStream(stream)

        return program()

    def demander(base):
        def program():
            for i in range(4):
                yield GlobalLoad(length=8, stride=1, address=base + 64 * i)

        return program()

    machine = CedarMachine(CedarConfig())
    collector = SpanCollector().attach(machine.bus)
    programs = {port: prefetcher(port * 512) for port in range(6)}
    programs.update({port: demander(port * 256) for port in range(6, 10)})
    machine.run_programs(programs)
    latencies = [span.latency for span in collector.complete_spans()]
    collector.detach()
    return latencies
