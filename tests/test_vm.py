"""Unit tests for Xylem virtual memory: address split, TLBs, faults."""

import pytest

from repro.core.config import VMConfig
from repro.vm.address import AddressSpace, MemoryLevel
from repro.vm.paging import PageTable, TLB, VirtualMemory


class TestAddressSpace:
    def test_lower_half_is_cluster(self):
        sp = AddressSpace(bits=32)
        assert sp.decode(0x1000).level is MemoryLevel.CLUSTER

    def test_upper_half_is_global(self):
        sp = AddressSpace(bits=32)
        assert sp.decode(0x8000_0000).level is MemoryLevel.GLOBAL
        assert sp.decode(0x8000_0000).offset == 0

    def test_encode_decode_round_trip(self):
        sp = AddressSpace(bits=32)
        for level in MemoryLevel:
            phys = sp.encode(level, 0x1234)
            decoded = sp.decode(phys)
            assert decoded.level is level and decoded.offset == 0x1234

    def test_out_of_range_rejected(self):
        sp = AddressSpace(bits=32)
        with pytest.raises(ValueError):
            sp.decode(1 << 32)

    def test_remote_cluster_memory_not_addressable(self):
        sp = AddressSpace(bits=32)
        with pytest.raises(PermissionError):
            sp.check_access(0x1000, cluster=1, owner_cluster=0)
        sp.check_access(0x1000, cluster=0, owner_cluster=0)  # own cluster OK
        sp.check_access(0x8000_1000, cluster=1, owner_cluster=0)  # global OK


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert not tlb.lookup(7)
        tlb.insert(7, 1)
        assert tlb.lookup(7)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(1, 0)
        tlb.insert(2, 0)
        tlb.lookup(1)        # 1 becomes most-recent
        tlb.insert(3, 0)     # evicts 2
        assert tlb.lookup(1)
        assert not tlb.lookup(2)
        assert tlb.lookup(3)

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.insert(1, 0)
        tlb.flush()
        assert not tlb.lookup(1)


class TestPageTable:
    def test_populate_assigns_frames(self):
        pt = PageTable()
        f0 = pt.populate(10)
        f1 = pt.populate(11)
        assert f0 != f1
        assert pt.is_valid(10) and pt.frame(10) == f0

    def test_populate_idempotent(self):
        pt = PageTable()
        assert pt.populate(5) == pt.populate(5)
        assert pt.populations == 1

    def test_invalidate(self):
        pt = PageTable()
        pt.populate(5)
        pt.invalidate(5)
        assert not pt.is_valid(5)


class TestVirtualMemory:
    def make(self, clusters=4):
        return VirtualMemory(VMConfig(), clusters=clusters)

    def test_first_touch_is_page_fault(self):
        vm = self.make()
        out = vm.access(0, cluster=0)
        assert out.page_fault and out.cycles == VMConfig().page_fault_cycles

    def test_second_touch_same_cluster_hits(self):
        vm = self.make()
        vm.access(0, cluster=0)
        out = vm.access(8, cluster=0)  # same page
        assert out.tlb_hit and out.cycles == 0

    def test_other_cluster_takes_tlb_miss_fault_not_page_fault(self):
        """The TRFD effect: a valid PTE exists in global memory, but the
        second cluster still faults (cheaper TLB-miss fault)."""
        vm = self.make()
        vm.access(0, cluster=0)
        out = vm.access(0, cluster=1)
        assert out.tlb_miss_fault and not out.page_fault
        assert out.cycles == VMConfig().tlb_miss_cycles

    def test_multicluster_fault_multiplication(self):
        """Touching the same pages from all four clusters roughly
        quadruples faults versus one cluster — the TRFD observation."""
        one = self.make()
        pages = 64
        one.touch_range(0, pages * 4096, cluster=0)
        four = self.make()
        for c in range(4):
            four.touch_range(0, pages * 4096, cluster=c)
        assert one.faults == pages
        assert four.faults == 4 * pages

    def test_touch_range_cost_accumulates(self):
        vm = self.make()
        cost = vm.touch_range(0, 3 * 4096, cluster=0)
        assert cost == 3 * VMConfig().page_fault_cycles

    def test_bad_cluster_rejected(self):
        vm = self.make(clusters=2)
        with pytest.raises(ValueError):
            vm.access(0, cluster=5)

    def test_page_of(self):
        vm = self.make()
        assert vm.page_of(0) == 0
        assert vm.page_of(4095) == 0
        assert vm.page_of(4096) == 1
