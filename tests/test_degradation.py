"""The degradation experiment: graceful performance loss under faults.

Acceptance contract: delivered MFLOPS degrade monotonically as the
injected fault rate rises, and the whole sweep is a deterministic
function of its seed.
"""

from repro.experiments.degradation import render_degradation, run_degradation

RATES = (0.0, 0.02, 0.05)


def sweep(seed=2024):
    return run_degradation(rates=RATES, seed=seed, strips=3, rounds=8)


class TestDegradation:
    def test_performance_degrades_monotonically(self):
        points = sweep()
        mflops = [p.mflops for p in points]
        assert mflops[0] > mflops[1] > mflops[2] > 0.0
        # the clean point sees no faults at all; faulty points do
        assert points[0].transients == points[0].ecc_retries == 0
        assert points[1].transients > 0
        assert points[2].transients > points[1].transients
        assert not any(p.aborted for p in points)

    def test_sweep_is_deterministic_per_seed(self):
        assert sweep() == sweep()

    def test_sync_phase_slows_down_too(self):
        points = sweep()
        assert points[-1].sync_cycles > points[0].sync_cycles > 0.0

    def test_render_includes_every_rate_and_status(self):
        text = render_degradation(sweep())
        for rate in RATES:
            assert f"{rate:g}" in text
        assert "ok" in text and "deterministically" in text

    def test_registered_fast_mode_smokes(self):
        from repro.experiments.runner import REGISTRY

        exp = REGISTRY["degradation"]
        assert exp.arguments(fast=True)["strips"] < exp.arguments(False)["strips"]
