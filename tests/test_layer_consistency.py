"""Cross-layer consistency: the instruction-level vector unit, the
cycle-level kernel traces, and the analytic Fortran cost model must
tell one story about the same operations."""

import pytest

from repro.cluster.vector_unit import (
    Operand,
    Scalar,
    VectorInstruction,
    VectorUnit,
    VECTOR_STARTUP_CYCLES,
)
from repro.core.config import CedarConfig
from repro.fortran.cost import VectorCostModel
from repro.fortran.placement import Placement
from repro.kernels.programs import SCALAR_OVERHEAD, VSTART


class TestStartupConstantsAgree:
    def test_vector_startup_shared(self):
        """The kernel traces' VSTART, the config's startup, and the
        vector unit's pipeline fill are the same 12 cycles."""
        assert VSTART == VECTOR_STARTUP_CYCLES
        assert CedarConfig().ce.vector_startup_cycles == VSTART

    def test_scalar_overhead_consistent_with_isa(self):
        """A strip's scalar glue (~6 simple 68020 instructions of loop
        control and addressing) matches the traces' SCALAR_OVERHEAD."""
        unit = VectorUnit()
        glue = unit.execute([Scalar(count=6)])
        assert glue.cycles == pytest.approx(SCALAR_OVERHEAD)


class TestStripCostsAgree:
    def test_cached_strip(self):
        """One 32-word cached multiply: ISA model vs cost model."""
        unit = VectorUnit()
        isa = unit.execute(
            [VectorInstruction("vmul", operand=Operand.CACHE, dest=1, sources=(0,))]
        )
        cost = VectorCostModel(CedarConfig())
        analytic = cost.vector_op_cycles(
            32, [Placement.LOOP_LOCAL], flops_per_element=1.0
        )
        assert isa.cycles == pytest.approx(analytic, rel=0.05)

    def test_prefetched_global_strip(self):
        unit = VectorUnit()
        isa = unit.execute(
            [VectorInstruction("vmul", operand=Operand.GLOBAL_PREF,
                               dest=1, sources=(0,))]
        )
        cost = VectorCostModel(CedarConfig())
        analytic = cost.vector_op_cycles(
            32, [Placement.GLOBAL], flops_per_element=1.0
        )
        # the analytic model adds the PFU arm; the ISA model does not
        arm = CedarConfig().prefetch.arm_cycles
        assert isa.cycles == pytest.approx(analytic - arm, rel=0.05)

    def test_nopref_global_ratio(self):
        """Both layers put the no-prefetch:prefetch word-cost ratio at
        6.5 / 1.15."""
        unit = VectorUnit()
        pref = unit.execute(
            [VectorInstruction("vmul", operand=Operand.GLOBAL_PREF,
                               dest=1, sources=(0,))]
        )
        plain = unit.execute(
            [VectorInstruction("vmul", operand=Operand.GLOBAL,
                               dest=1, sources=(0,))]
        )
        isa_ratio = (plain.cycles - VSTART) / (pref.cycles - VSTART)
        from repro.perfect.profiles import NOPREF_INFLATION

        assert isa_ratio == pytest.approx(NOPREF_INFLATION, rel=0.02)


class TestSimulatorAgreesWithCostModel:
    def test_unloaded_prefetch_stream_rate(self):
        """The cost model's 1.15 cycles/word for prefetched global data
        is what the cycle-level simulator delivers unloaded (1.0) plus
        mild self-interference; the calibrated value sits between the
        unloaded floor and the 8-CE measurement."""
        from repro.experiments.kernels_sim import run_kernel_measurement

        unloaded = run_kernel_measurement("VF", 1, prefetch=True, strips=8)
        assert unloaded.interarrival is not None
        floor = unloaded.interarrival
        calibrated = VectorCostModel(CedarConfig()).prefetched_word_cycles
        loaded = run_kernel_measurement("VF", 8, prefetch=True, strips=8)
        assert floor <= calibrated <= loaded.interarrival + 0.1

    def test_nopref_round_trip_everywhere(self):
        """13-cycle round trip: config-derived, simulator-measured, and
        cost-model values coincide."""
        cost = VectorCostModel(CedarConfig())
        assert cost.nopref_word_cycles == pytest.approx(6.5)
        from repro.experiments.characterization import run_characterization

        measured = run_characterization().nopref_cycles_per_word
        assert measured == pytest.approx(cost.nopref_word_cycles, rel=0.1)