"""Tests for the sharded crash-safe result store (repro.store)."""

import json
import os
import time

import pytest

from repro.store import (
    FileLock,
    RealFS,
    ResultStore,
    payload_checksum,
    shard_of,
)
from repro.store.core import _HELD_LOCKS

KEY = "ab" + "cd" * 31
KEY2 = "ef" + "01" * 31


class RecordingFS(RealFS):
    """RealFS that logs every operation, for protocol-order asserts."""

    def __init__(self):
        self.ops = []

    def write_bytes(self, path, data, fsync=True):
        self.ops.append(("write_bytes", str(path), fsync))
        super().write_bytes(path, data, fsync=fsync)

    def rename(self, src, dst):
        self.ops.append(("rename", str(src), str(dst)))
        super().rename(src, dst)

    def fsync_dir(self, path):
        self.ops.append(("fsync_dir", str(path)))
        super().fsync_dir(path)


class TestLayout:
    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put(KEY, {"a": 1})
        path = store.entry_path(KEY)
        assert path.parent == tmp_path / "ab"
        assert path.name == f"{KEY}.json"
        assert path.is_file()
        assert shard_of(KEY) == "ab"

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"output": "text", "nested": {"n": [1, 2, 3]}}
        assert store.get(KEY) is None
        assert store.put(KEY, payload)
        assert store.get(KEY) == payload

    def test_keys_enumerates_all_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        store.put(KEY2, {"b": 2})
        assert store.keys() == sorted([KEY, KEY2])

    def test_rejects_non_content_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "ab", "../escape", "ABCDEF00"):
            with pytest.raises(ValueError):
                store.entry_path(bad)

    def test_no_temp_or_lock_debris_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file()
            and not p.name.endswith(".json")
        ]
        assert leftovers == []


class TestCommitProtocol:
    def test_temp_is_fsynced_before_rename_then_dir_fsynced(self, tmp_path):
        fs = RecordingFS()
        ResultStore(tmp_path, fs=fs).put(KEY, {"a": 1})
        ops = [op for op in fs.ops if op[0] in ("write_bytes", "rename", "fsync_dir")]
        assert [op[0] for op in ops] == ["write_bytes", "rename", "fsync_dir"]
        assert ops[0][2] is True  # the temp write is fsynced
        assert ops[0][1] == ops[1][1]  # ...and is what gets renamed
        assert ops[1][2] == str(ResultStore(tmp_path).entry_path(KEY))

    def test_temp_names_are_unique_per_writer(self, tmp_path):
        fs = RecordingFS()
        store = ResultStore(tmp_path, fs=fs)
        store.put(KEY, {"a": 1})
        store.put(KEY, {"a": 2})
        temps = [op[1] for op in fs.ops if op[0] == "write_bytes"]
        assert len(set(temps)) == 2
        assert all(str(os.getpid()) in t for t in temps)

    def test_real_io_failure_cleans_up_and_raises(self, tmp_path):
        class FailingFS(RealFS):
            def rename(self, src, dst):
                raise OSError("disk went away")

        store = ResultStore(tmp_path, fs=FailingFS())
        with pytest.raises(OSError, match="disk went away"):
            store.put(KEY, {"a": 1})
        # our debris was cleaned: no temp, no lock left behind
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []


class TestVerifiedReads:
    def test_checksum_mismatch_quarantines_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"output": "good"})
        path = store.entry_path(KEY)
        path.write_text(path.read_text().replace("good", "evil"))
        with pytest.warns(UserWarning, match="checksum-mismatch"):
            assert store.get(KEY) is None
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert not path.exists()
        # a fresh put re-establishes the entry
        assert store.put(KEY, {"output": "good"})
        assert store.get(KEY) == {"output": "good"}

    def test_unparseable_entry_quarantines_and_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        store.entry_path(KEY).write_text("{torn")
        with pytest.warns(UserWarning, match="unparseable"):
            assert store.get(KEY) is None
        assert (tmp_path / "quarantine").is_dir()

    def test_embedded_key_mismatch_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY2, {"a": 1})
        # file an entry under the wrong name
        (tmp_path / "ab").mkdir(exist_ok=True)
        os.rename(store.entry_path(KEY2), store.entry_path(KEY))
        with pytest.warns(UserWarning, match="key-mismatch"):
            assert store.get(KEY) is None

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        import warnings

        store = ResultStore(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(KEY) is None

    def test_checksum_is_over_canonical_payload(self):
        assert payload_checksum({"b": 1, "a": 2}) == payload_checksum(
            {"a": 2, "b": 1}
        )


class TestFileLock:
    def test_acquire_release_round_trip(self, tmp_path):
        lock = FileLock(RealFS(), tmp_path / "x.lock")
        assert lock.acquire()
        assert (tmp_path / "x.lock").exists()
        lock.release()
        assert not (tmp_path / "x.lock").exists()

    def test_contended_acquire_times_out(self, tmp_path):
        fs = RealFS()
        holder = FileLock(fs, tmp_path / "x.lock")
        assert holder.acquire()
        waiter = FileLock(fs, tmp_path / "x.lock", timeout_s=0.05)
        assert not waiter.acquire()
        holder.release()

    def test_dead_pid_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        # a pid that cannot exist holds the lock
        path.write_text(json.dumps({"pid": 2**22 + 12345, "t": time.time()}))
        lock = FileLock(RealFS(), path, timeout_s=0.5)
        assert lock.acquire()
        lock.release()

    def test_own_orphan_lock_is_broken(self, tmp_path):
        # our pid, but not tracked as held: a crashed earlier commit
        path = tmp_path / "x.lock"
        path.write_text(json.dumps({"pid": os.getpid(), "t": time.time()}))
        assert str(path) not in _HELD_LOCKS
        lock = FileLock(RealFS(), path, timeout_s=0.5)
        assert lock.acquire()
        lock.release()

    def test_over_age_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        now = [1000.0]
        fs = RealFS()
        other = FileLock(fs, path, clock=lambda: now[0])
        assert other.acquire()
        _HELD_LOCKS.discard(str(path))  # pretend another process holds it
        path.write_text(json.dumps({"pid": 2**22 + 54321, "t": now[0]}))
        now[0] += 31.0  # default stale_s is 30
        lock = FileLock(fs, path, timeout_s=0.5, clock=lambda: now[0])
        assert lock.acquire()
        lock.release()

    def test_torn_lock_content_is_stale(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text('{"pid"')
        assert FileLock(RealFS(), path).is_stale()

    def test_contended_put_skips_redundant_write(self, tmp_path):
        store = ResultStore(tmp_path, lock_timeout_s=0.05)
        holder = FileLock(RealFS(), store.lock_path(KEY))
        store.fs.mkdir(store.lock_path(KEY).parent)
        assert holder.acquire()
        with pytest.warns(UserWarning, match="lock contended"):
            assert store.put(KEY, {"a": 1}) is False
        holder.release()
        assert store.put(KEY, {"a": 1}) is True


class TestVerifyRepair:
    def test_clean_store_verifies_consistent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        store.put(KEY2, {"b": 2})
        report = store.verify()
        assert report.entries == 2 and report.ok == 2
        assert report.issues == [] and report.consistent

    def test_verify_reports_without_touching(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        store.entry_path(KEY).write_text("{torn")
        report = store.verify(repair=False)
        assert not report.consistent
        assert [i.kind for i in report.issues] == ["unparseable"]
        assert store.entry_path(KEY).exists()  # nothing moved

    def test_repair_quarantines_corrupt_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        path = store.entry_path(KEY)
        path.write_text(path.read_text().replace('"a"', '"z"'))
        with pytest.warns(UserWarning, match="quarantined"):
            report = store.verify(repair=True)
        assert report.consistent
        assert not path.exists()
        assert len(list((tmp_path / "quarantine").iterdir())) == 1

    def test_repair_removes_aged_orphan_temps(self, tmp_path):
        store = ResultStore(tmp_path, tmp_grace_s=0.0)
        store.put(KEY, {"a": 1})
        orphan = tmp_path / "ab" / f"{KEY}.99999.0.tmp"
        orphan.write_text("half-written")
        report = store.verify(repair=True)
        assert ("orphan-temp", "removed") in [
            (i.kind, i.action) for i in report.issues
        ]
        assert not orphan.exists()

    def test_fresh_temps_are_presumed_in_flight(self, tmp_path):
        store = ResultStore(tmp_path, tmp_grace_s=60.0)
        (tmp_path / "ab").mkdir()
        (tmp_path / "ab" / f"{KEY}.99999.0.tmp").write_text("in flight")
        report = store.verify(repair=True)
        assert report.issues == [] and report.consistent

    def test_live_locks_are_honored_stale_broken(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "ab").mkdir()
        live = FileLock(RealFS(), store.lock_path(KEY))
        assert live.acquire()
        stale = store.lock_path(KEY2)
        (tmp_path / "ef").mkdir()
        stale.write_text(json.dumps({"pid": 2**22 + 999, "t": time.time()}))
        report = store.verify(repair=True)
        found = {(i.kind, i.path) for i in report.issues}
        assert ("stale-lock", str(stale)) in found
        assert all(str(live.path) != path for _, path in found)
        assert not stale.exists()
        live.release()

    def test_verify_is_idempotent_after_repair(self, tmp_path):
        store = ResultStore(tmp_path, tmp_grace_s=0.0)
        store.put(KEY, {"a": 1})
        store.entry_path(KEY).write_text("{torn")
        with pytest.warns(UserWarning):
            store.verify(repair=True)
        again = store.verify(repair=True)
        assert again.issues == [] and again.consistent


class TestLegacyMigration:
    def test_repair_reshards_legacy_flat_entries(self, tmp_path):
        legacy = {"key": KEY, "experiment": "x", "output": "old text"}
        (tmp_path / f"x.{KEY[:16]}.json").write_text(json.dumps(legacy))
        store = ResultStore(tmp_path)
        report = store.verify(repair=True)
        assert ("legacy-flat", "resharded") in [
            (i.kind, i.action) for i in report.issues
        ]
        assert not (tmp_path / f"x.{KEY[:16]}.json").exists()
        assert store.get(KEY) == legacy

    def test_repair_quarantines_unsound_legacy_files(self, tmp_path):
        (tmp_path / "junk.json").write_text("not json at all {")
        store = ResultStore(tmp_path)
        with pytest.warns(UserWarning, match="quarantined"):
            report = store.verify(repair=True)
        assert report.consistent
        assert not (tmp_path / "junk.json").exists()


class TestGCAndStats:
    def test_gc_evicts_oldest_until_under_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [f"{i:02x}" + "00" * 31 for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, {"n": i, "pad": "x" * 50})
            os.utime(store.entry_path(key), (1000 + i, 1000 + i))
        sizes = [store.entry_path(k).stat().st_size for k in keys]
        budget = sum(sizes) - 1  # force at least one eviction
        report = store.gc(budget)
        assert report.removed >= 1 and report.bytes_kept <= budget
        # oldest went first
        assert store.get(keys[0]) is None
        assert store.get(keys[-1]) is not None

    def test_gc_under_budget_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        report = store.gc(10**9)
        assert report.removed == 0 and report.kept == 1

    def test_stats_counts_every_category(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"a": 1})
        store.put(KEY2, {"b": 2})
        (tmp_path / "legacy.json").write_text("{}")
        (tmp_path / "ab" / "x.tmp").write_text("t")
        (tmp_path / "ab" / "y.lock").write_text("{}")
        store.entry_path(KEY2).write_text("{torn")
        with pytest.warns(UserWarning):
            store.get(KEY2)  # quarantines
        stats = store.stats()
        assert stats.entries == 1
        assert stats.legacy == 1
        assert stats.quarantined == 1
        assert stats.temps == 1 and stats.locks == 1
        assert stats.shards == 1  # ab still populated; ef emptied by quarantine
        assert stats.total_bytes > 0
