"""Fleet-telemetry schema, sink, and worker-heartbeat plumbing.

The lifecycle-event schema must round-trip through the JSONL sink and
past :func:`validate_telemetry`; malformed streams must be rejected
with a pointed error.  The heartbeat emitter is driven here with a
deterministic fake clock and a capturing ``send`` — no subprocesses,
no wall-clock sleeps.
"""

import json

import pytest

from repro.core.context import SimContext
from repro.core.engine import Engine
from repro.monitor.telemetry import (
    DEFAULT_HEARTBEAT_S,
    TELEMETRY_VERSION,
    FleetTelemetry,
    HeartbeatEmitter,
    TelemetrySink,
    make_event,
    peak_rss_kb,
    validate_telemetry,
    validate_telemetry_file,
)


def _valid_stream():
    return [
        make_event("run_queued", "table2", "abc123", 1.0),
        make_event("worker_started", "table2", "abc123", 1.1, pid=42),
        make_event(
            "heartbeat", "table2", "abc123", 1.4,
            events_processed=5000, sim_cycles=120.0, events_per_sec=9e5,
        ),
        make_event(
            "retry", "table2", "abc123", 2.0, attempt=1,
            error="transient", next_attempt=2, backoff_s=0.5,
        ),
        make_event(
            "cache_hit", "fig3", "abc123", 2.1, attempt=0,
            key="abcdef0123456789", shard="ab", verified=True,
        ),
        make_event("failed", "table2", "abc123", 3.0, attempt=2, error="kaboom"),
        make_event(
            "completed", "fig3", "abc123", 3.5, elapsed_s=2.4, cached=False
        ),
    ]


class TestSchema:
    def test_make_event_stamps_required_fields(self):
        event = make_event("run_queued", "table2", "abc123", 1.5, attempt=2)
        assert event["v"] == TELEMETRY_VERSION
        assert event["type"] == "run_queued"
        assert event["experiment"] == "table2"
        assert event["config_hash"] == "abc123"
        assert event["t_wall"] == 1.5 and event["attempt"] == 2

    def test_make_event_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown telemetry event type"):
            make_event("exploded", "table2", "abc123", 1.0)

    def test_valid_stream_counts_by_type(self):
        counts = validate_telemetry(_valid_stream())
        assert counts == {
            "run_queued": 1, "worker_started": 1, "heartbeat": 1,
            "retry": 1, "cache_hit": 1, "failed": 1, "completed": 1,
        }

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda e: e.update(v=99), "unsupported telemetry version"),
            (lambda e: e.pop("experiment"), "missing 'experiment'"),
            (lambda e: e.update(type="exploded"), "unknown event type"),
            (lambda e: e.update(t_wall="soon"), "t_wall is not a number"),
            (lambda e: e.update(attempt=-1), "attempt must be"),
            (lambda e: e.update(attempt=1.5), "attempt must be"),
        ],
    )
    def test_malformed_events_rejected(self, mutate, match):
        events = _valid_stream()
        mutate(events[0])
        with pytest.raises(ValueError, match=match):
            validate_telemetry(events)

    @pytest.mark.parametrize(
        "type_, missing",
        [
            ("heartbeat", "events_processed"),
            ("cache_hit", "verified"),
            ("retry", "backoff_s"),
            ("failed", "error"),
            ("completed", "cached"),
        ],
    )
    def test_per_type_payload_fields_required(self, type_, missing):
        events = _valid_stream()
        event = next(e for e in events if e["type"] == type_)
        del event[missing]
        with pytest.raises(ValueError, match=f"{type_} event missing"):
            validate_telemetry(events)

    def test_non_dict_event_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_telemetry(["heartbeat"])


class TestSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t" / "run.jsonl"
        with TelemetrySink(path) as sink:
            for event in _valid_stream():
                sink.emit(event)
            assert sink.emitted == 7
        counts = validate_telemetry_file(path)
        assert sum(counts.values()) == 7

    def test_flushes_per_event(self, tmp_path):
        # a killed run must leave every emitted event on disk
        path = tmp_path / "run.jsonl"
        sink = TelemetrySink(path)
        sink.emit(make_event("run_queued", "x", "h", 1.0))
        assert len(path.read_text().splitlines()) == 1
        sink.close()

    def test_append_only_across_sessions(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for _ in range(2):
            with TelemetrySink(path) as sink:
                sink.emit(make_event("run_queued", "x", "h", 1.0))
        assert len(path.read_text().splitlines()) == 2

    def test_unparseable_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"v": 1, "type": "run_queued"\n')
        with pytest.raises(ValueError, match="unparseable JSONL"):
            validate_telemetry_file(path)


class TestFleetTelemetry:
    def test_stamps_hash_clock_and_fans_out(self, tmp_path):
        seen = []
        clock = iter([10.0, 11.0]).__next__
        sink = TelemetrySink(tmp_path / "run.jsonl")
        telemetry = FleetTelemetry(
            sink=sink, on_event=seen.append, clock=clock
        )
        telemetry.event("run_queued", "table2")
        telemetry.event(
            "completed", "table2", elapsed_s=1.0, cached=False
        )
        telemetry.close()
        assert [e["t_wall"] for e in seen] == [10.0, 11.0]
        assert all(e["config_hash"] == telemetry.config_hash for e in seen)
        assert telemetry.events == 2
        disk = [
            json.loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        assert disk == seen
        validate_telemetry(disk)

    def test_default_heartbeat_interval(self):
        assert FleetTelemetry().heartbeat_s == DEFAULT_HEARTBEAT_S


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0


class _FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestHeartbeatEmitter:
    def test_observer_arms_engine_pulse(self):
        emitter = HeartbeatEmitter(send=lambda msg: None)
        with emitter:
            ctx = SimContext()
            assert ctx.engine._pulse == emitter._pulse
        assert ctx.engine._pulse is None  # uninstall detaches

    def test_rate_limited_by_fake_clock(self):
        sent = []
        clock = _FakeClock()
        emitter = HeartbeatEmitter(
            send=sent.append, min_interval_s=0.25, clock=clock
        )
        engine = Engine()
        emitter._engines.append(engine)
        emitter._pulse(engine)          # first pulse beats
        emitter._pulse(engine)          # same instant: suppressed
        clock.t = 0.1
        emitter._pulse(engine)          # inside the interval: suppressed
        clock.t = 0.30
        emitter._pulse(engine)          # past the interval: beats
        assert emitter.beats == 2 and len(sent) == 2
        assert all(tag == "hb" for tag, _ in sent)

    def test_payload_shape_and_monotone_events(self):
        sent = []
        emitter = HeartbeatEmitter(send=sent.append, min_interval_s=0.0)
        with emitter:
            ctx = SimContext()
            for i in range(10_000):
                ctx.engine.schedule_after(float(i + 1), lambda: None)
            ctx.engine.run_until_idle()
        # the pulse cadence (every few thousand events) fired mid-run
        assert len(sent) >= 2
        payloads = [p for _, p in sent]
        events = [p["events_processed"] for p in payloads]
        # beats land on the pulse cadence, so the final beat trails the
        # run total by less than one check interval
        assert events == sorted(events) and 4096 <= events[-1] <= 10_000
        last = payloads[-1]
        assert last["machines"] == 1
        assert last["sim_cycles"] > 0.0
        assert set(last) == {
            "events_processed", "sim_cycles", "events_per_sec",
            "peak_rss_kb", "machines",
        }

    def test_empty_payload_before_any_machine(self):
        emitter = HeartbeatEmitter(send=lambda msg: None)
        payload = emitter.payload()
        assert payload["events_processed"] == 0
        assert payload["machines"] == 0

    def test_broken_send_never_raises(self):
        def _broken(msg):
            raise BrokenPipeError("gone")

        emitter = HeartbeatEmitter(send=_broken)
        emitter.beat()  # must not raise
        assert emitter.beats == 0
