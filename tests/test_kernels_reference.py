"""Tests for the reference kernel mathematics (numpy-validated)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.reference import (
    cg_flops_per_iteration,
    cg_solve,
    make_spd_pentadiag,
    pentadiag_matvec,
    rank_k_flops,
    rank_k_update,
    tridiag_flops,
    tridiag_matvec,
    vector_fetch,
)


def dense_from_tridiag(lower, diag, upper):
    n = diag.shape[0]
    a = np.diag(diag)
    a += np.diag(lower, k=-1)
    a += np.diag(upper, k=1)
    return a


def dense_from_pentadiag(diagonals):
    dm2, dm1, d0, dp1, dp2 = diagonals
    a = np.diag(d0)
    a += np.diag(dm1, k=-1) + np.diag(dp1, k=1)
    a += np.diag(dm2, k=-2) + np.diag(dp2, k=2)
    return a


class TestVectorFetch:
    def test_copies_values(self):
        src = np.arange(16.0)
        dst = vector_fetch(src)
        assert np.array_equal(dst, src)

    def test_returns_private_copy(self):
        src = np.zeros(4)
        dst = vector_fetch(src)
        dst[0] = 1.0
        assert src[0] == 0.0


class TestRankKUpdate:
    def test_against_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 16))
        c = rng.standard_normal((16, 64))
        got = rank_k_update(a.copy(), b, c)
        assert np.allclose(got, a + b @ c)

    def test_out_parameter(self):
        a = np.ones((4, 4))
        b = np.ones((4, 2))
        c = np.ones((2, 4))
        out = np.zeros((4, 4))
        rank_k_update(a, b, c, out=out)
        assert np.allclose(out, a + 2.0)  # a itself untouched
        assert np.allclose(a, 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rank_k_update(np.zeros((4, 4)), np.zeros((4, 2)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            rank_k_update(np.zeros((5, 4)), np.zeros((4, 2)), np.zeros((2, 4)))

    def test_flop_count(self):
        assert rank_k_flops(1024, 64) == 2 * 64 * 1024 * 1024

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_update_property(self, n, k):
        rng = np.random.default_rng(n * 100 + k)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, k))
        c = rng.standard_normal((k, n))
        assert np.allclose(rank_k_update(a.copy(), b, c), a + b @ c)


class TestTridiagMatvec:
    def test_against_dense(self):
        rng = np.random.default_rng(1)
        n = 50
        lower = rng.standard_normal(n - 1)
        diag = rng.standard_normal(n)
        upper = rng.standard_normal(n - 1)
        x = rng.standard_normal(n)
        dense = dense_from_tridiag(lower, diag, upper)
        assert np.allclose(tridiag_matvec(lower, diag, upper, x), dense @ x)

    def test_identity(self):
        n = 8
        x = np.arange(float(n))
        y = tridiag_matvec(np.zeros(n - 1), np.ones(n), np.zeros(n - 1), x)
        assert np.allclose(y, x)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            tridiag_matvec(np.zeros(3), np.zeros(4), np.zeros(3), np.zeros(5))

    def test_flops(self):
        assert tridiag_flops(100) == 496


class TestPentadiagMatvec:
    def test_against_dense(self):
        rng = np.random.default_rng(2)
        n = 40
        diagonals = (
            rng.standard_normal(n - 2),
            rng.standard_normal(n - 1),
            rng.standard_normal(n),
            rng.standard_normal(n - 1),
            rng.standard_normal(n - 2),
        )
        x = rng.standard_normal(n)
        dense = dense_from_pentadiag(diagonals)
        assert np.allclose(pentadiag_matvec(diagonals, x), dense @ x)

    def test_needs_five_diagonals(self):
        with pytest.raises(ValueError):
            pentadiag_matvec((np.zeros(3),) * 3, np.zeros(3))

    @given(st.integers(min_value=5, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_linear_operator_property(self, n):
        diagonals = make_spd_pentadiag(n, seed=n)
        rng = np.random.default_rng(n)
        x, y = rng.standard_normal(n), rng.standard_normal(n)
        lhs = pentadiag_matvec(diagonals, 2.0 * x + y)
        rhs = 2.0 * pentadiag_matvec(diagonals, x) + pentadiag_matvec(diagonals, y)
        assert np.allclose(lhs, rhs)

    def test_spd_construction_is_symmetric_dominant(self):
        diagonals = make_spd_pentadiag(30, seed=3)
        dense = dense_from_pentadiag(diagonals)
        assert np.allclose(dense, dense.T)
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0


class TestCGSolve:
    def test_solves_spd_system(self):
        n = 200
        diagonals = make_spd_pentadiag(n, seed=5)
        rng = np.random.default_rng(5)
        x_true = rng.standard_normal(n)
        b = pentadiag_matvec(diagonals, x_true)
        result = cg_solve(diagonals, b, tol=1e-12)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_zero_rhs_converges_immediately(self):
        diagonals = make_spd_pentadiag(16, seed=0)
        result = cg_solve(diagonals, np.zeros(16))
        assert result.iterations == 0
        assert np.allclose(result.x, 0.0)

    def test_max_iter_respected(self):
        diagonals = make_spd_pentadiag(100, seed=9)
        b = np.ones(100)
        result = cg_solve(diagonals, b, tol=1e-16, max_iter=3)
        assert result.iterations == 3

    def test_residual_reported(self):
        diagonals = make_spd_pentadiag(64, seed=4)
        b = np.ones(64)
        result = cg_solve(diagonals, b, tol=1e-10)
        r = b - pentadiag_matvec(diagonals, result.x)
        assert np.linalg.norm(r) / np.linalg.norm(b) == pytest.approx(
            result.residual, abs=1e-12
        )

    @given(st.integers(min_value=8, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_convergence_property(self, n):
        diagonals = make_spd_pentadiag(n, seed=n * 3)
        rng = np.random.default_rng(n)
        b = rng.standard_normal(n)
        result = cg_solve(diagonals, b, tol=1e-10)
        assert result.residual < 1e-8

    def test_flops_per_iteration(self):
        assert cg_flops_per_iteration(1000) == 19_000
