"""Tests for the memory-module resource behaviour (replies, writes,
blocks, sync ops) using a minimal two-network harness."""

import pytest

from repro.core.config import GlobalMemoryConfig
from repro.core.engine import Engine
from repro.gmemory.interleave import iter_addresses, module_for_address, sweep_modules
from repro.gmemory.module import GlobalMemory
from repro.gmemory.sync import SyncOp, TestOp as RelOp
from repro.network.omega import OmegaNetwork
from repro.network.packet import Packet, PacketKind


def make_harness(modules=32):
    engine = Engine()
    config = GlobalMemoryConfig(modules=modules)
    fwd = OmegaNetwork(engine, "fwd", 32)
    rev = OmegaNetwork(engine, "rev", 32)
    gmem = GlobalMemory(engine, config, rev)
    return engine, fwd, rev, gmem


class TestInterleave:
    def test_double_word_interleave(self):
        assert module_for_address(0, 32) == 0
        assert module_for_address(1, 32) == 1
        assert module_for_address(33, 32) == 1

    def test_sweep_stride_one_round_robin(self):
        assert sweep_modules(0, 4, 1, 32) == [0, 1, 2, 3]

    def test_sweep_pathological_stride(self):
        assert set(sweep_modules(0, 8, 32, 32)) == {0}

    def test_iter_addresses(self):
        assert list(iter_addresses(10, 3, 2)) == [10, 12, 14]

    def test_validation(self):
        with pytest.raises(ValueError):
            module_for_address(-1, 32)
        with pytest.raises(ValueError):
            module_for_address(0, 0)
        with pytest.raises(ValueError):
            sweep_modules(0, -1, 1, 32)


class TestModuleService:
    def test_read_generates_reply_to_source(self):
        engine, fwd, rev, gmem = make_harness()
        replies = []
        rev.register_sink(3, lambda p: replies.append(p))
        pkt = Packet(PacketKind.READ_REQ, src=3, dst=7, address=7)
        fwd.inject(pkt, tail=gmem.route_tail(7))
        engine.run()
        assert len(replies) == 1
        assert replies[0].kind is PacketKind.READ_REPLY
        assert gmem.modules[7].reads == 1

    def test_write_is_consumed_silently(self):
        engine, fwd, rev, gmem = make_harness()
        rev.register_sink(0, lambda p: pytest.fail("write must not reply"))
        pkt = Packet(PacketKind.WRITE_REQ, src=0, dst=5, address=5, words=2)
        fwd.inject(pkt, tail=gmem.route_tail(5))
        engine.run()
        assert gmem.total_writes == 1

    def test_block_request_returns_block_reply(self):
        engine, fwd, rev, gmem = make_harness()
        replies = []
        rev.register_sink(1, lambda p: replies.append(p))
        pkt = Packet(
            PacketKind.BLOCK_REQ, src=1, dst=2, address=2, words=1,
            meta={"block_words": 3},
        )
        fwd.inject(pkt, tail=gmem.route_tail(2))
        engine.run()
        assert replies[0].kind is PacketKind.BLOCK_REPLY
        assert replies[0].words == 4  # control + 3 data (network maximum)

    def test_sync_request_executes_in_module(self):
        engine, fwd, rev, gmem = make_harness()
        replies = []
        rev.register_sink(0, lambda p: replies.append(p))
        pkt = Packet(
            PacketKind.SYNC_REQ, src=0, dst=9, address=9, words=2,
            meta={"sync": (RelOp.ALWAYS, 0, SyncOp.ADD, 5)},
        )
        fwd.inject(pkt, tail=gmem.route_tail(9))
        engine.run()
        result = replies[0].meta["sync_result"]
        assert result.success and result.new_value == 5
        assert gmem.modules[9].sync.peek(9) == 5
        assert gmem.total_sync_ops == 1

    def test_sync_takes_longer_than_read(self):
        engine, fwd, rev, gmem = make_harness()
        times = {}
        rev.register_sink(0, lambda p: times.setdefault(p.kind, engine.now))
        read = Packet(PacketKind.READ_REQ, src=0, dst=4, address=4)
        fwd.inject(read, tail=gmem.route_tail(4))
        engine.run()
        engine2, fwd2, rev2, gmem2 = make_harness()
        times2 = {}
        rev2.register_sink(0, lambda p: times2.setdefault(p.kind, engine2.now))
        sync = Packet(
            PacketKind.SYNC_REQ, src=0, dst=4, address=4, words=2,
            meta={"sync": (RelOp.ALWAYS, 0, SyncOp.READ, 0)},
        )
        fwd2.inject(sync, tail=gmem2.route_tail(4))
        engine2.run()
        assert times2[PacketKind.SYNC_REPLY] > times[PacketKind.READ_REPLY]

    def test_module_steering(self):
        _, _, _, gmem = make_harness()
        assert gmem.module_for(0).index == 0
        assert gmem.module_for(65).index == 1

    def test_unknown_packet_kind_rejected(self):
        engine, fwd, rev, gmem = make_harness()
        rev.register_sink(0, lambda p: None)
        bad = Packet(PacketKind.READ_REPLY, src=0, dst=0, address=0)
        fwd.inject(bad, tail=gmem.route_tail(0))
        with pytest.raises(ValueError):
            engine.run()
