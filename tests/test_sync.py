"""Unit + property tests for the Zhu-Yew synchronization processor."""

import pytest
from hypothesis import given, strategies as st

from repro.gmemory.sync import SyncOp, SyncProcessor, TestOp as RelOp


class TestTestAndSet:
    def test_first_acquisition_succeeds(self):
        sp = SyncProcessor()
        res = sp.test_and_set(100)
        assert res.success and res.old_value == 0 and res.new_value == 1

    def test_second_acquisition_sees_lock_held(self):
        sp = SyncProcessor()
        sp.test_and_set(100)
        res = sp.test_and_set(100)
        assert res.old_value == 1  # caller observes the lock was taken


class TestTestAndOperate:
    def test_failed_test_leaves_value(self):
        sp = SyncProcessor()
        sp.poke(4, 10)
        res = sp.test_and_op(4, RelOp.GT, 20, SyncOp.ADD, 5)
        assert not res.success
        assert sp.peek(4) == 10

    def test_successful_test_applies_op(self):
        sp = SyncProcessor()
        sp.poke(4, 30)
        res = sp.test_and_op(4, RelOp.GT, 20, SyncOp.ADD, 5)
        assert res.success and res.new_value == 35

    @pytest.mark.parametrize(
        "test,operand,expected",
        [
            (RelOp.EQ, 7, True),
            (RelOp.NE, 7, False),
            (RelOp.GT, 6, True),
            (RelOp.GE, 7, True),
            (RelOp.LT, 8, True),
            (RelOp.LE, 6, False),
            (RelOp.ALWAYS, 0, True),
        ],
    )
    def test_relational_tests(self, test, operand, expected):
        sp = SyncProcessor()
        sp.poke(0, 7)
        assert sp.test_and_op(0, test, operand, SyncOp.READ).success is expected

    @pytest.mark.parametrize(
        "op,operand,expected",
        [
            (SyncOp.READ, 0, 12),
            (SyncOp.WRITE, 99, 99),
            (SyncOp.ADD, 3, 15),
            (SyncOp.SUB, 3, 9),
            (SyncOp.AND, 8, 8),
            (SyncOp.OR, 16, 28),
            (SyncOp.XOR, 4, 8),
        ],
    )
    def test_operations(self, op, operand, expected):
        sp = SyncProcessor()
        sp.poke(0, 12)
        res = sp.test_and_op(0, RelOp.ALWAYS, 0, op, operand)
        assert res.new_value == expected

    def test_32bit_wraparound(self):
        sp = SyncProcessor()
        sp.poke(0, 0x7FFFFFFF)
        res = sp.test_and_op(0, RelOp.ALWAYS, 0, SyncOp.ADD, 1)
        assert res.new_value == -(1 << 31)  # signed overflow wraps

    def test_negative_values_compare_signed(self):
        sp = SyncProcessor()
        sp.poke(0, -5 & 0xFFFFFFFF)
        assert sp.test_and_op(0, RelOp.LT, 0, SyncOp.READ).success


class TestFetchAndAdd:
    def test_returns_old_value(self):
        sp = SyncProcessor()
        assert sp.fetch_and_add(0) == 0
        assert sp.fetch_and_add(0) == 1
        assert sp.fetch_and_add(0, 10) == 2
        assert sp.peek(0) == 12

    def test_self_scheduling_hands_out_unique_iterations(self):
        """The runtime library's core use: concurrent CEs claiming loop
        iterations each receive a distinct index."""
        sp = SyncProcessor()
        claimed = [sp.fetch_and_add(0) for _ in range(100)]
        assert claimed == list(range(100))

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=50))
    def test_adds_accumulate(self, increments):
        sp = SyncProcessor()
        for inc in increments:
            sp.fetch_and_add(7, inc)
        assert sp.peek(7) == sum(increments)


class TestIsolation:
    def test_addresses_are_independent(self):
        sp = SyncProcessor()
        sp.fetch_and_add(1, 5)
        sp.fetch_and_add(2, 7)
        assert sp.peek(1) == 5 and sp.peek(2) == 7

    def test_operation_counter(self):
        sp = SyncProcessor()
        sp.test_and_set(0)
        sp.fetch_and_add(1)
        assert sp.operations == 2
