"""Tests for the Fortran-style loop parser + end-to-end restructuring."""

import pytest

from repro.restructurer.ir import UNKNOWN, AffineIndex
from repro.restructurer.parser import (
    ParseError,
    parse_loop,
    parse_program,
    parse_statement,
)
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE


class TestSubscripts:
    def test_plain_index(self):
        st = parse_statement("Y(I) = X(I)", "I")
        assert st.lhs.array == "Y"
        assert st.lhs.index == AffineIndex(1, 0)

    def test_offsets_and_coefficients(self):
        st = parse_statement("Y(2*I-1) = X(I+3)", "I")
        assert st.lhs.index == AffineIndex(2, -1)
        assert st.rhs[0].index == AffineIndex(1, 3)

    def test_constant_subscript(self):
        st = parse_statement("W(1) = X(I)", "I")
        assert st.lhs.index == AffineIndex(0, 1)

    def test_index_array_is_unknown(self):
        st = parse_statement("B(IDX(I)) = X(I)", "I")
        assert st.lhs.index is UNKNOWN
        # and IDX itself is recorded as read
        assert any(r.array == "IDX" for r in st.rhs)

    def test_scalar_reference(self):
        st = parse_statement("T = X(I)", "I")
        assert st.lhs.is_scalar

    def test_loop_var_not_a_reference(self):
        st = parse_statement("Y(I) = X(I) + I", "I")
        assert all(r.array != "I" for r in st.rhs)

    def test_intrinsics_transparent(self):
        st = parse_statement("Y(I) = SQRT(X(I))", "I")
        assert [r.array for r in st.rhs] == ["X"]


class TestStatementClassification:
    def test_sum_reduction(self):
        st = parse_statement("S = S + X(I)", "I")
        assert st.reduction_op == "+"

    def test_product_reduction(self):
        st = parse_statement("P = P * X(I)", "I")
        assert st.reduction_op == "*"

    def test_basic_induction(self):
        st = parse_statement("K = K + 2", "I")
        assert st.is_induction_update and not st.induction_is_advanced

    def test_multiplicative_induction_is_advanced(self):
        st = parse_statement("K = K * 2", "I")
        assert st.is_induction_update and st.induction_is_advanced

    def test_call_statement(self):
        st = parse_statement("CALL FOO(Y(I))", "I")
        assert st.calls and st.calls[0].name == "FOO"

    def test_call_with_save_convention(self):
        st = parse_statement("CALL KERNEL_SAVE(Y(I))", "I")
        assert st.calls[0].has_save

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("GOTO 10", "I")


class TestLoopParsing:
    def test_header_and_trips(self):
        loop = parse_loop("DO I = 1, 100\nY(I) = X(I)\nEND DO")
        assert loop.var == "I" and loop.trips == 100

    def test_step(self):
        loop = parse_loop("DO I = 1, 100, 2\nY(I) = X(I)\nEND DO")
        assert loop.trips == 50

    def test_labelled_continue_form(self):
        loop = parse_loop("DO 10 J = 1, 8\nY(J) = X(J)\n10 CONTINUE")
        assert loop.var == "J" and loop.trips == 8

    def test_comments_stripped(self):
        loop = parse_loop(
            "DO I = 1, 4  ! outer sweep\nY(I) = X(I)  ! copy\nEND DO"
        )
        assert len(loop.statements()) == 1

    def test_nested_rejected(self):
        src = "DO I = 1, 4\nDO J = 1, 4\nY(J) = X(J)\nEND DO\nEND DO"
        with pytest.raises(ParseError):
            parse_loop(src)

    def test_unterminated_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("DO I = 1, 4\nY(I) = X(I)")

    def test_zero_step_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("DO I = 1, 4, 0\nY(I) = X(I)\nEND DO")


class TestEndToEndRestructuring:
    def test_clean_loop_parallel(self):
        loop = parse_loop("DO I = 1, 100\nY(I) = 2.0 * X(I)\nEND DO")
        assert KAP_PIPELINE.restructure_loop(loop).parallel

    def test_recurrence_detected(self):
        loop = parse_loop("DO I = 1, 100\nY(I) = Y(I-1) + X(I)\nEND DO")
        assert not AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_reduction_needs_advanced(self):
        src = "DO I = 1, 100\nS = S + X(I)\nEND DO"
        loop = parse_loop(src)
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel and "parallel reduction" in verdict.transforms

    def test_scalar_temp_handled_by_kap(self):
        src = "DO I = 1, 100\nT = X(I)\nY(I) = T * T\nEND DO"
        verdict = KAP_PIPELINE.restructure_loop(parse_loop(src))
        assert verdict.parallel
        assert "scalar privatization" in verdict.transforms

    def test_array_workspace_needs_advanced(self):
        src = "DO I = 1, 100\nW(1) = X(I)\nY(I) = W(1) + 1.0\nEND DO"
        loop = parse_loop(src)
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        assert AUTOMATABLE_PIPELINE.restructure_loop(loop).parallel

    def test_index_array_runtime_tested(self):
        src = "DO I = 1, 100\nB(IDX(I)) = B(IDX(I)) + X(I)\nEND DO"
        loop = parse_loop(src)
        assert not KAP_PIPELINE.restructure_loop(loop).parallel
        loop.reset_analysis()
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert verdict.parallel and "runtime dependence test" in verdict.transforms

    def test_distance_two_recurrence_detected(self):
        loop = parse_loop("DO I = 1, 100\nA(I) = A(I-2) * 0.5\nEND DO")
        verdict = AUTOMATABLE_PIPELINE.restructure_loop(loop)
        assert not verdict.parallel
        assert any(d.distance == 2 for d in verdict.blockers)


class TestProgramParsing:
    def test_multiple_loops(self):
        src = (
            "DO I = 1, 10\nY(I) = X(I)\nEND DO\n"
            "DO J = 1, 20\nS = S + Y(J)\nEND DO"
        )
        program = parse_program(src, name="demo")
        assert len(program.loops) == 2
        report = AUTOMATABLE_PIPELINE.restructure(program)
        assert report.parallel_coverage == pytest.approx(1.0)

    def test_statement_outside_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_program("Y(1) = 0.0")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   \n  ! just a comment\n")
