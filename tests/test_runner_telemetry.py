"""Runner fleet telemetry end to end: lifecycle events, worker
heartbeats over the result pipe, and the no-heartbeat stall budget.

The key behavioral contract: with telemetry on, ``timeout_s`` is a
*stall* budget — a worker that keeps making heartbeat progress
survives past it, while a hung worker dies after roughly the budget
(not the full wall-clock timeout it would have been granted before).
With telemetry off, the original flat wall-clock deadline applies.
"""

import time

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.runner import Experiment, run_all
from repro.monitor.telemetry import FleetTelemetry, validate_telemetry


@pytest.fixture
def scratch_registry():
    added = []

    def add(experiment):
        runner_mod.register(experiment)
        added.append(experiment.name)
        return experiment

    yield add
    for name in added:
        runner_mod.REGISTRY.pop(name, None)


def _telemetry(events, heartbeat_s=0.05):
    return FleetTelemetry(on_event=events.append, heartbeat_s=heartbeat_s)


def _hang_after_hello():
    # never builds a machine: after the worker's hello beat, silence.
    time.sleep(30)
    return "never"


def _slow_but_progressing(batches=25, events_per_batch=5000, sleep_s=0.06):
    # total wall time ~batches*sleep_s (plus sim): far beyond a 0.75s
    # budget, but every batch runs thousands of engine events, so the
    # pulse keeps beating between sleeps.
    from repro.core.context import SimContext

    ctx = SimContext()
    engine = ctx.engine
    for _ in range(batches):
        for i in range(events_per_batch):
            engine.schedule_after(float(i + 1), _noop)
        engine.run_until_idle()
        time.sleep(sleep_s)
    return f"progressed {engine.events_processed} events"


def _noop():
    pass


class TestStallBudget:
    def test_hung_worker_dies_on_heartbeat_silence(self, scratch_registry):
        scratch_registry(
            Experiment("hang-quiet", "hello beat then silence", _hang_after_hello)
        )
        events = []
        start = time.perf_counter()
        (result,) = run_all(
            names=["hang-quiet"], timeout_s=1.0, telemetry=_telemetry(events)
        )
        elapsed = time.perf_counter() - start
        assert not result.ok
        # killed at ~the stall budget, nowhere near the 30s sleep
        assert elapsed < 10.0
        assert result.error.startswith("stalled: no heartbeat progress for 1s")
        # the retry/failure is annotated with last-known progress
        assert "last heartbeat: 0 events" in result.error

    def test_progressing_worker_survives_past_flat_timeout(
        self, scratch_registry
    ):
        scratch_registry(
            Experiment("slow-alive", "slow but beating", _slow_but_progressing)
        )
        events = []
        (result,) = run_all(
            names=["slow-alive"], timeout_s=0.75, telemetry=_telemetry(events)
        )
        # wall time is ~1.5s+, well past the 0.75s budget — but the
        # worker kept beating, so it was never killed
        assert result.ok, result.error
        assert result.output.startswith("progressed")
        assert result.elapsed_s > 0.75
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert len(beats) >= 3
        progress = [e["events_processed"] for e in beats]
        assert progress == sorted(progress)

    def test_flat_timeout_without_telemetry_unchanged(self, scratch_registry):
        scratch_registry(
            Experiment("slow-flat", "slow but beating", _slow_but_progressing)
        )
        (result,) = run_all(names=["slow-flat"], timeout_s=0.75)
        # telemetry off: the old flat wall-clock deadline still kills it
        assert not result.ok
        assert result.error == "timeout after 0.75s"


class TestLifecycleEvents:
    def test_isolated_run_emits_ordered_lifecycle(self, scratch_registry):
        events = []
        (result,) = run_all(
            names=["topology"], jobs=2, telemetry=_telemetry(events)
        )
        assert result.ok
        validate_telemetry(events)
        types = [e["type"] for e in events if e["experiment"] == "topology"]
        assert types[0] == "run_queued"
        assert types[1] == "worker_started"
        assert types[-1] == "completed"
        done = events[-1]
        assert done["cached"] is False and done["elapsed_s"] > 0.0
        started = events[1]
        assert started["attempt"] == 1 and started["pid"] > 0

    def test_inline_run_emits_lifecycle_too(self, scratch_registry):
        events = []
        (result,) = run_all(
            names=["topology"], jobs=1, telemetry=_telemetry(events)
        )
        assert result.ok
        validate_telemetry(events)
        types = [e["type"] for e in events]
        assert types[0] == "run_queued" and types[-1] == "completed"

    def test_cache_hit_emits_cache_hit_event(self, tmp_path):
        warm = []
        run_all(names=["topology"], cache_dir=tmp_path, telemetry=_telemetry(warm))
        assert not any(e["type"] == "cache_hit" for e in warm)
        events = []
        (result,) = run_all(
            names=["topology"], cache_dir=tmp_path, telemetry=_telemetry(events)
        )
        assert result.ok and result.cached
        validate_telemetry(events)
        types = [e["type"] for e in events]
        assert "cache_hit" in types and "run_queued" not in types

    def test_machine_building_run_streams_heartbeats(self, scratch_registry):
        scratch_registry(
            Experiment(
                "beats",
                "builds a machine, beats",
                _slow_but_progressing,
                kwargs={"batches": 5, "sleep_s": 0.06},
            )
        )
        events = []
        (result,) = run_all(names=["beats"], jobs=2, telemetry=_telemetry(events))
        assert result.ok
        validate_telemetry(events)
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats, "worker heartbeats never reached the parent"
        assert all(e["experiment"] == "beats" for e in beats)

    def test_retry_event_carries_attempt_and_backoff(self, scratch_registry):
        scratch_registry(Experiment("boom-tel", "always raises", _always_boom))
        events = []
        (result,) = run_all(
            names=["boom-tel"], jobs=2, retries=1, retry_backoff_s=0.01,
            telemetry=_telemetry(events),
        )
        assert not result.ok and result.attempts == 2
        validate_telemetry(events)
        (retry,) = [e for e in events if e["type"] == "retry"]
        assert retry["attempt"] == 1 and retry["next_attempt"] == 2
        assert "kaboom" in retry["error"]
        assert retry["backoff_s"] >= 0.0
        (failed,) = [e for e in events if e["type"] == "failed"]
        assert failed["attempt"] == 2 and "kaboom" in failed["error"]

    def test_unmonitored_run_emits_nothing(self, scratch_registry):
        # telemetry=None is the default: the runner must not grow any
        # emission side effects when nobody is listening
        (result,) = run_all(names=["topology"], jobs=2)
        assert result.ok


def _always_boom():
    raise RuntimeError("kaboom")
