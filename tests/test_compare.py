"""Cross-run differential reports: deltas, significance, CLI gate.

Identical report sets must compare clean (exit 0, zero significant
deltas); a perturbed metric must trip the stability threshold and the
nonzero exit; streaming sketch documents must diff per quantile.
"""

import copy
import json

import pytest

from repro.__main__ import main
from repro.monitor.compare import (
    DEFAULT_STABILITY_THRESHOLD,
    CompareResult,
    Delta,
    check_section_parity,
    compare_reports,
    compare_streaming_docs,
    load_reports,
    pair_stability,
    render_compare,
    report_metrics,
)
from repro.monitor.sketch import QuantileSketch


def _timeline(values=(10.0, 20.0, 30.0)):
    return {
        "version": 1,
        "interval_cycles": 64.0,
        "initial_interval_cycles": 64.0,
        "max_intervals": 512,
        "coalesces": 0,
        "intervals": len(values),
        "edges": [64.0 * (i + 1) for i in range(len(values))],
        "series": {
            "engine.events": {"kind": "delta", "values": list(values)},
        },
    }


def _report(name="table2", cycles=1859.0, p99=42.0):
    return {
        "version": 3,
        "experiment": name,
        "title": name,
        "elapsed_s": 1.23,          # wall clock: must never be diffed
        "cached": False,
        "machines_built": 1,
        "total_sim_cycles": cycles,
        "total_engine_events": 5000,
        "machines": [
            {
                "sim_cycles": cycles,
                "engine": {
                    "events_processed": 5000,
                    "events_per_sec": 9e5,  # wall clock: never diffed
                },
                "latency": {
                    "requests": 100,
                    "end_to_end": {
                        "all": {
                            "count": 100, "mean": 21.0, "max": 55.0,
                            "p50": 20.0, "p90": 33.0, "p95": 38.0,
                            "p99": p99,
                        },
                    },
                },
            },
        ],
    }


class TestPairStability:
    def test_equal_is_perfectly_stable(self):
        assert pair_stability(5.0, 5.0) == 1.0
        assert pair_stability(0.0, 0.0) == 1.0

    def test_zero_against_nonzero_is_maximally_unstable(self):
        assert pair_stability(0.0, 7.0) == 0.0
        assert pair_stability(7.0, 0.0) == 0.0

    def test_min_over_max(self):
        assert pair_stability(90.0, 100.0) == pytest.approx(0.9)
        assert pair_stability(100.0, 90.0) == pytest.approx(0.9)

    def test_delta_significance_threshold(self):
        near = Delta("x", "m", 100.0, 99.0)    # stability 0.99
        far = Delta("x", "m", 100.0, 90.0)     # stability 0.90
        assert not near.significant(DEFAULT_STABILITY_THRESHOLD)
        assert far.significant(DEFAULT_STABILITY_THRESHOLD)
        assert near.significant(0.995)


class TestReportMetrics:
    def test_wall_clock_fields_excluded(self):
        rows = report_metrics(_report())
        assert "total_sim_cycles" in rows
        assert "m0.sim_cycles" in rows
        assert "m0.latency[all].p99" in rows
        assert not any("elapsed" in k or "per_sec" in k for k in rows)


class TestCompareReports:
    def test_identical_runs_compare_clean(self):
        a = {"table2": _report()}
        result = compare_reports(a, copy.deepcopy(a))
        assert result.ok
        assert result.deltas and not result.significant

    def test_perturbed_metric_is_significant(self):
        a = {"table2": _report()}
        b = {"table2": _report(cycles=1859.0 * 1.1, p99=42.0 * 1.3)}
        result = compare_reports(a, b)
        assert not result.ok
        flagged = {d.metric for d in result.significant}
        assert "total_sim_cycles" in flagged
        assert "m0.latency[all].p99" in flagged
        assert "m0.events_processed" not in flagged  # unchanged

    def test_small_jitter_below_threshold_is_ok(self):
        a = {"table2": _report(p99=100.0)}
        b = {"table2": _report(p99=101.0)}  # 1% < the 2% band
        assert compare_reports(a, b).ok

    def test_coverage_difference_fails(self):
        a = {"table2": _report("table2"), "fig3": _report("fig3")}
        b = {"table2": _report("table2")}
        result = compare_reports(a, b)
        assert not result.ok
        assert result.only_a == ["fig3"] and result.only_b == []


def _timeline_report(name="table2", values=(10.0, 20.0, 30.0)):
    report = _report(name)
    report["machines"][0]["timeline"] = _timeline(values)
    return report


class TestTimelineDiffs:
    def test_per_interval_rows_flattened(self):
        rows = report_metrics(_timeline_report())
        assert rows["m0.timeline.intervals"] == 3.0
        assert rows["m0.timeline.interval_cycles"] == 64.0
        assert rows["m0.timeline[engine.events].i001"] == 20.0

    def test_regressed_interval_is_localized(self):
        """A shift in one window flags that window's row — the diff
        names *which interval* moved, not just that the run did."""
        a = {"t": _timeline_report(values=(10.0, 20.0, 30.0))}
        b = {"t": _timeline_report(values=(10.0, 40.0, 30.0))}
        result = compare_reports(a, b)
        flagged = {d.metric for d in result.significant}
        assert "m0.timeline[engine.events].i001" in flagged
        assert "m0.timeline[engine.events].i000" not in flagged
        assert "m0.timeline[engine.events].i002" not in flagged


class TestSectionParity:
    def test_both_sides_with_timelines_pass(self):
        a = {"t": _timeline_report()}
        check_section_parity(a, copy.deepcopy(a))  # must not raise

    def test_neither_side_with_timelines_passes(self):
        a = {"t": _report()}
        check_section_parity(a, copy.deepcopy(a))  # must not raise

    def test_one_sided_timeline_coverage_raises(self):
        with pytest.raises(ValueError, match="timeline") as err:
            check_section_parity(
                {"t": _timeline_report()}, {"t": _report()}
            )
        assert "--interval" in str(err.value)

    def test_one_sided_latency_coverage_raises(self):
        bare = _report()
        del bare["machines"][0]["latency"]
        with pytest.raises(ValueError, match="latency") as err:
            check_section_parity({"t": _report()}, {"t": bare})
        assert "run-all" in str(err.value)

    def test_compare_reports_enforces_parity(self):
        with pytest.raises(ValueError, match="timeline"):
            compare_reports({"t": _report()}, {"t": _timeline_report()})


class TestLoadReports:
    def test_directory_and_single_file(self, tmp_path):
        (tmp_path / "table2.json").write_text(json.dumps(_report("table2")))
        (tmp_path / "fig3.json").write_text(json.dumps(_report("fig3")))
        assert set(load_reports(tmp_path)) == {"table2", "fig3"}
        assert set(load_reports(tmp_path / "fig3.json")) == {"fig3"}

    def test_missing_path_suggests_run_all(self, tmp_path):
        with pytest.raises(ValueError, match="run `python -m repro run-all`"):
            load_reports(tmp_path / "nope")

    def test_empty_directory_suggests_run_all(self, tmp_path):
        with pytest.raises(ValueError, match="run `python -m repro run-all`"):
            load_reports(tmp_path)


def _stream_doc(values):
    sketch = QuantileSketch()
    for v in values:
        sketch.record(v)
    return {
        "complete": len(values),
        "incomplete": 0,
        "dropped": 0,
        "sketches": {"latency": {"end_to_end": sketch.to_dict()}},
    }


class TestCompareStreaming:
    def test_identical_sketches_compare_clean(self):
        values = [float(i % 37 + 1) for i in range(500)]
        result = compare_streaming_docs(_stream_doc(values), _stream_doc(values))
        assert result.ok
        metrics = {d.metric for d in result.deltas}
        assert "latency[end_to_end].p99" in metrics
        assert "latency[end_to_end].count" in metrics

    def test_shifted_tail_is_significant(self):
        base = [float(i % 37 + 1) for i in range(500)]
        shifted = [v * 2.0 for v in base]
        result = compare_streaming_docs(_stream_doc(base), _stream_doc(shifted))
        flagged = {d.metric for d in result.significant}
        assert "latency[end_to_end].mean" in flagged
        assert "latency[end_to_end].p99" in flagged


class TestRenderCompare:
    def test_clean_run_renders_ok_verdict(self):
        a = {"table2": _report()}
        text = render_compare(compare_reports(a, copy.deepcopy(a)))
        assert text.startswith("OK:") and "zero significant" in text

    def test_differing_run_renders_table_and_verdict(self):
        a = {"table2": _report()}
        b = {"table2": _report(cycles=3000.0)}
        text = render_compare(compare_reports(a, b), "base", "cand")
        assert "DIFFER:" in text
        assert "total_sim_cycles" in text
        assert "base" in text and "cand" in text

    def test_show_all_lists_insignificant_metrics(self):
        a = {"table2": _report()}
        result = compare_reports(a, copy.deepcopy(a))
        assert "m0.latency[all].p50" in render_compare(result, show_all=True)

    def test_coverage_difference_rendered(self):
        result = CompareResult(only_a=["fig3"])
        assert "only in A" in render_compare(result)


class TestCompareCLI:
    def _write_dirs(self, tmp_path, perturb=False):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "table2.json").write_text(json.dumps(_report()))
        cycles = 1859.0 * (1.2 if perturb else 1.0)
        (b / "table2.json").write_text(json.dumps(_report(cycles=cycles)))
        return a, b

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        a, b = self._write_dirs(tmp_path)
        assert main(["compare", str(a), str(b)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = self._write_dirs(tmp_path, perturb=True)
        assert main(["compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "DIFFER:" in out and "total_sim_cycles" in out

    def test_loose_threshold_tolerates_the_same_delta(self, tmp_path):
        a, b = self._write_dirs(tmp_path, perturb=True)
        assert main(["compare", str(a), str(b), "--threshold", "0.5"]) == 0

    def test_missing_side_is_one_line_error(self, tmp_path, capsys):
        a, _ = self._write_dirs(tmp_path)
        assert main(["compare", str(a), str(tmp_path / "nope")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "run-all" in err

    def test_mismatched_timeline_coverage_is_one_line_error(
        self, tmp_path, capsys
    ):
        """One side collected with --interval, the other without: the
        CLI must emit a single actionable ``error:`` line and exit 1,
        not a traceback."""
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "t.json").write_text(json.dumps(_timeline_report("t")))
        (b / "t.json").write_text(json.dumps(_report("t")))
        assert main(["compare", str(a), str(b)]) == 1
        captured = capsys.readouterr()
        err = captured.err
        assert err.startswith("error:") and "timeline" in err
        assert "--interval" in err
        assert "Traceback" not in err + captured.out

    def test_coverage_difference_stays_flagged_not_fatal(
        self, tmp_path, capsys
    ):
        """Different experiment sets are a *finding* (only-in-A rows,
        exit 1), not an error: parity checks must not upgrade them."""
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "t.json").write_text(json.dumps(_report("t")))
        (a / "u.json").write_text(json.dumps(_report("u")))
        (b / "t.json").write_text(json.dumps(_report("t")))
        assert main(["compare", str(a), str(b)]) == 1
        captured = capsys.readouterr()
        assert "only in a (missing from b): u" in captured.out
        assert not captured.err.startswith("error:")

    def test_stream_documents_compare(self, tmp_path, capsys):
        values = [float(i % 11 + 1) for i in range(200)]
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(_stream_doc(values)))
        pb.write_text(json.dumps(_stream_doc([v * 3 for v in values])))
        assert main(["compare", str(pa), str(pb), "--stream"]) == 1
        assert "DIFFER:" in capsys.readouterr().out
        assert main(["compare", str(pa), str(pa), "--stream"]) == 0
