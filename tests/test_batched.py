"""Batched-engine characterization: adversarial same-timestamp mixes.

The :class:`~repro.core.engine.BatchedEngine` promises bit-identical
behaviour to the scalar :class:`~repro.core.engine.Engine` — same
dispatch order, same final state, same counters — while dispatching
whole same-timestamp buckets per transaction.  These tests drive both
engines through the adversarial intra-timestamp cases the bucket queue
must get right: cancels landing inside an already-popped batch,
zero-delay re-schedules extending the current timestamp,
``request_stop`` mid-batch with a resumed run, pulse visits at batch
boundaries, bounded-run resume over buckets, and exceptions escaping
mid-batch.  Each scenario runs on both engine classes and asserts the
*traces* are equal — the scalar engine is the reference semantics.
"""

import pytest

from repro.core.engine import (
    BatchedEngine,
    Engine,
    SimulationError,
    batched_enabled,
    make_engine,
)

ENGINES = [Engine, BatchedEngine]


def both(scenario):
    """Run ``scenario(engine) -> trace`` on both engines; assert equal
    traces and return the shared trace for scenario-specific asserts."""
    scalar = scenario(Engine())
    batched = scenario(BatchedEngine())
    assert batched == scalar
    return scalar


# ---------------------------------------------------------------------------
# feature gate


def test_gate_selects_engine_class(monkeypatch):
    monkeypatch.delenv("CEDAR_BATCHED", raising=False)
    assert batched_enabled()
    assert type(make_engine()) is BatchedEngine
    monkeypatch.setenv("CEDAR_BATCHED", "0")
    assert not batched_enabled()
    assert type(make_engine()) is Engine
    monkeypatch.setenv("CEDAR_BATCHED", "off")
    assert type(make_engine()) is Engine
    monkeypatch.setenv("CEDAR_BATCHED", "1")
    assert type(make_engine()) is BatchedEngine


def test_gate_module_reexports():
    from repro.perf import batch

    assert batch.make_engine is make_engine
    assert batch.BatchedEngine is BatchedEngine


# ---------------------------------------------------------------------------
# intra-timestamp ordering


def test_same_timestamp_fifo_order_matches_scalar():
    def scenario(eng):
        seen = []
        for tag in range(8):
            eng.schedule(3.0, lambda t=tag: seen.append(t))
        eng.run_until_idle()
        return seen

    assert both(scenario) == list(range(8))


def test_cancel_within_active_batch():
    # an early event in the bucket cancels a later one in the *same*
    # bucket — the batched drain has already popped the whole batch, so
    # the blanked slot must be skipped mid-dispatch, exactly as the
    # scalar drain skips it at the queue head.
    def scenario(eng):
        seen = []
        handles = {}

        def killer():
            seen.append("killer")
            assert eng.cancel(handles["victim"])

        eng.schedule(2.0, killer)
        handles["victim"] = eng.schedule(2.0, lambda: seen.append("victim"))
        eng.schedule(2.0, lambda: seen.append("survivor"))
        eng.run_until_idle()
        return (seen, eng.pending(), eng.events_processed)

    seen, pending, processed = both(scenario)
    assert seen == ["killer", "survivor"]
    assert pending == 0
    assert processed == 2


def test_zero_delay_reschedule_extends_current_timestamp():
    # schedule_after(0) from inside a batch lands at the *current*
    # timestamp, whose bucket is already popped; the new event must run
    # in this timestamp, after every already-pending record — the
    # scalar engine's seq order.
    def scenario(eng):
        seen = []

        def first():
            seen.append(("first", eng.now))
            eng.schedule_after(0.0, lambda: seen.append(("extra", eng.now)))

        eng.schedule(1.0, first)
        eng.schedule(1.0, lambda: seen.append(("second", eng.now)))
        eng.schedule(2.0, lambda: seen.append(("later", eng.now)))
        eng.run_until_idle()
        return seen

    assert both(scenario) == [
        ("first", 1.0), ("second", 1.0), ("extra", 1.0), ("later", 2.0),
    ]


def test_zero_delay_reschedule_chain_drains_before_advancing():
    def scenario(eng):
        seen = []

        def chain(depth):
            seen.append((eng.now, depth))
            if depth:
                eng.schedule_after(0.0, chain, depth - 1)

        eng.schedule(1.0, chain, 3)
        eng.schedule(1.5, lambda: seen.append((eng.now, "tick")))
        eng.run_until_idle()
        return seen

    assert both(scenario) == [
        (1.0, 3), (1.0, 2), (1.0, 1), (1.0, 0), (1.5, "tick"),
    ]


def test_mixed_cancel_reschedule_storm_is_identical():
    # a deterministic pseudo-random mix of same-timestamp schedules,
    # cancels of pending and active-batch events, and zero-delay
    # re-schedules; the full dispatch trace must match the reference.
    def scenario(eng):
        seen = []
        handles = []

        def act(tag, step):
            seen.append((eng.now, tag))
            k = (tag * 7 + step) % 4
            if k == 0:
                handles.append(
                    eng.schedule_after(0.0, act, tag + 100, step + 1)
                )
            elif k == 1 and handles:
                eng.cancel(handles.pop((tag + step) % len(handles)))
            elif k == 2:
                handles.append(
                    eng.schedule_after(float(tag % 3), act, tag + 200, step + 1)
                )

        for tag in range(12):
            handles.append(eng.schedule(float(tag % 3), act, tag, 0))
        eng.run_until_idle()
        return seen

    trace = both(scenario)
    assert len(trace) > 12  # the storm actually rescheduled work


# ---------------------------------------------------------------------------
# request_stop mid-batch and the resume contract


def test_request_stop_mid_batch_preserves_remainder():
    def scenario(eng):
        seen = []

        def stopper():
            seen.append("stopper")
            eng.request_stop()

        eng.schedule(1.0, lambda: seen.append("a"))
        eng.schedule(1.0, stopper)
        eng.schedule(1.0, lambda: seen.append("b"))
        eng.schedule(2.0, lambda: seen.append("c"))
        eng.run_until_idle()
        stopped = (list(seen), eng.pending(), eng.now)
        eng.run_until_idle()  # resume: no events lost or duplicated
        return (stopped, seen, eng.pending())

    stopped, seen, pending = both(scenario)
    assert stopped == (["a", "stopper"], 2, 1.0)
    assert seen == ["a", "stopper", "b", "c"]
    assert pending == 0


def test_request_stop_then_new_same_time_events_keep_order():
    # events scheduled at the stop timestamp *during* the stopped batch
    # must run after the requeued remainder on resume (seq order).
    def scenario(eng):
        seen = []

        def stopper():
            seen.append("stopper")
            eng.schedule_after(0.0, lambda: seen.append("late-add"))
            eng.request_stop()

        eng.schedule(1.0, stopper)
        eng.schedule(1.0, lambda: seen.append("pending-tail"))
        eng.run_until_idle()
        eng.run_until_idle()
        return seen

    assert both(scenario) == ["stopper", "pending-tail", "late-add"]


# ---------------------------------------------------------------------------
# bounded runs and supervision over buckets


def test_until_bound_stops_between_buckets():
    def scenario(eng):
        seen = []
        for when in (1.0, 2.0, 2.0, 3.0):
            eng.schedule(when, lambda w=when: seen.append(w))
        eng.run(until=2.0)
        mid = (list(seen), eng.now, eng.pending())
        eng.run_until_idle()
        return (mid, seen, eng.now)

    mid, seen, now = both(scenario)
    assert mid == ([1.0, 2.0, 2.0], 2.0, 1)
    assert seen == [1.0, 2.0, 2.0, 3.0]
    assert now == 3.0


def test_max_events_livelock_guard_matches():
    def scenario(eng):
        def forever():
            eng.schedule_after(1.0, forever)

        eng.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)
        return eng.events_processed

    assert both(scenario) == 100


def test_stop_when_predicate_matches():
    def scenario(eng):
        seen = []
        for tick in range(10):
            eng.schedule(float(tick), lambda t=tick: seen.append(t))
        eng.run(stop_when=lambda: len(seen) >= 4)
        return (list(seen), eng.pending())

    assert both(scenario) == ([0, 1, 2, 3], 6)


# ---------------------------------------------------------------------------
# pulse visits at batch boundaries


def test_pulse_sees_flushed_counters_at_batch_boundaries():
    def scenario(eng):
        visits = []
        for when in range(1, 30):
            for _ in range(4):
                eng.schedule(float(when), lambda: None)
        eng.attach_pulse(
            lambda e: visits.append((e.now, e.events_processed)), every=8
        )
        eng.run_until_idle()
        eng.detach_pulse()
        return visits

    visits = both(scenario)
    assert visits  # the pulse actually fired
    for now, processed in visits:
        # counters are flushed before every visit, and visits happen
        # only between timestamps: a batched pulse never observes a
        # half-dispatched cycle, so the count is a multiple of the
        # 4-events-per-timestamp batch size.
        assert processed % 4 == 0 and processed > 0


def test_unpulsed_run_is_identical_to_pulsed():
    def scenario(eng):
        seen = []
        for when in range(1, 20):
            eng.schedule(float(when), lambda w=when: seen.append(w))
        eng.run_until_idle()
        return seen

    def pulsed(eng):
        seen = []
        for when in range(1, 20):
            eng.schedule(float(when), lambda w=when: seen.append(w))
        eng.attach_pulse(lambda e: None, every=4)
        eng.run_until_idle()
        eng.detach_pulse()
        return seen

    assert both(scenario) == pulsed(BatchedEngine()) == pulsed(Engine())


# ---------------------------------------------------------------------------
# exceptions: the queue survives a raising callback


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_raising_callback_consumes_itself_and_preserves_rest(engine_cls):
    eng = engine_cls()
    seen = []

    def boom():
        seen.append("boom")
        raise RuntimeError("deliberate")

    eng.schedule(1.0, lambda: seen.append("a"))
    eng.schedule(1.0, boom)
    eng.schedule(1.0, lambda: seen.append("b"))
    eng.schedule(2.0, lambda: seen.append("c"))
    with pytest.raises(RuntimeError):
        eng.run_until_idle()
    assert seen == ["a", "boom"]
    # the raising event is spent; the untouched remainder is intact and
    # a resumed drain dispatches it exactly once, in order.
    assert eng.pending() == 2
    eng.run_until_idle()
    assert seen == ["a", "boom", "b", "c"]
    assert eng.pending() == 0


# ---------------------------------------------------------------------------
# state introspection parity


def test_dump_state_matches_scalar_order():
    def scenario(eng):
        def early_a():  # distinct names so order is visible in the dump
            pass

        def early_b():
            pass

        def late():
            pass

        eng.schedule(5.0, late)
        eng.schedule(1.0, early_a, "x")
        eng.schedule(1.0, early_b)
        handle = eng.schedule(3.0, lambda: None)
        eng.cancel(handle)
        state = eng.dump_state()
        # seq values differ by design (batched records carry seq 0);
        # the (when, callback) order is the contract.
        return [
            (e["when"], e["callback"].rsplit(".", 1)[-1])
            for e in state["upcoming"]
        ]

    assert both(scenario) == [
        (1.0, "early_a"), (1.0, "early_b"), (5.0, "late"),
    ]


def test_pending_and_reset_parity():
    def scenario(eng):
        handles = [eng.schedule(float(t % 3), lambda: None) for t in range(9)]
        eng.cancel(handles[4])
        counts = (eng.pending(),)
        eng.reset()
        return counts + (eng.pending(), eng.now, eng.events_processed)

    assert both(scenario) == (8, 0, 0.0, 0)


# ---------------------------------------------------------------------------
# machine-level identity (the group handler under real traffic)


def test_machine_run_identical_across_drains(monkeypatch):
    from repro.core.config import CedarConfig
    from repro.core.machine import CedarMachine
    from repro.kernels.programs import KERNELS, kernel_program

    results = {}
    for gate in ("0", "1"):
        monkeypatch.setenv("CEDAR_BATCHED", gate)
        machine = CedarMachine(CedarConfig())
        programs = {
            port: kernel_program(KERNELS["CG"], port, 2, prefetch=True)
            for port in range(4)
        }
        cycles = machine.run_programs(programs)
        results[gate] = (
            cycles,
            machine.engine.events_processed,
            machine.ctx.stats(),
        )
    scalar, batched = results["0"], results["1"]
    assert type(CedarMachine(CedarConfig()).engine) is BatchedEngine
    assert batched[0] == scalar[0], "simulated cycles diverged"
    assert batched[1] == scalar[1], "event counts diverged"
    assert batched[2] == scalar[2], "component counters diverged"
