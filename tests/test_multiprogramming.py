"""Tests for the single-user-mode rationale study."""

import pytest

from repro.experiments.multiprogramming import run_multiprogramming_study


class TestMultiprogramming:
    def test_single_user_is_deterministic_lower_bound(self):
        result = run_multiprogramming_study()
        # 16 x 10ms tasks on 4 clusters: 4 waves of 10ms
        assert result.single_user_makespan == pytest.approx(40.0)
        assert all(m >= result.single_user_makespan for m in result.shared_makespans)

    def test_sharing_slows_the_job(self):
        result = run_multiprogramming_study()
        assert result.mean_slowdown > 1.05

    def test_sharing_is_nondeterministic(self):
        """Different competitor phasings give different makespans — the
        non-determinism the paper avoided by measuring single-user."""
        result = run_multiprogramming_study()
        assert result.spread > 1.01
        assert len(set(result.shared_makespans)) > 1
