"""Light integration tests for the experiment harnesses (the heavy
assertions live in benchmarks/)."""

import pytest

from repro.experiments.fig1 import render_fig1, topology_summary
from repro.experiments.fig3 import band_census, render_fig3, run_fig3
from repro.experiments.overheads import nest_comparison_us, run_overheads
from repro.experiments.ppt4 import CedarCGModel, run_ppt4
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.metrics.bands import Band


class TestTable3Harness:
    def test_all_codes_present(self):
        rows = run_table3()
        assert len(rows) == 13

    def test_spice_has_no_automatable_version(self):
        rows = {r.code: r for r in run_table3()}
        assert rows["SPICE"].auto_time is None
        assert rows["SPICE"].mflops is not None

    def test_render_includes_paper_rows(self):
        text = render_table3(run_table3())
        assert "[ADM]" in text and "[TRFD]" in text

    def test_ymp_ratio_direction(self):
        rows = {r.code: r for r in run_table3()}
        assert rows["ARC2D"].ymp_ratio > 10  # vector code: YMP far ahead
        assert rows["QCD"].ymp_ratio < 1     # Cedar ahead on QCD


class TestTable4Harness:
    def test_rows_and_order(self):
        rows = run_table4()
        assert [r.code for r in rows[:4]] == ["ARC2D", "BDNA", "TRFD", "QCD"]

    def test_improvements_positive(self):
        assert all(r.improvement > 1.0 for r in run_table4())


class TestTable5Harness:
    def test_machines(self):
        machines = [r.machine for r in run_table5()]
        assert machines == ["Cedar", "Cray YMP-8", "Cray-1"]

    def test_instabilities_decrease(self):
        for row in run_table5():
            assert row.instabilities[0] >= row.instabilities[1] >= row.instabilities[2]


class TestTable6Harness:
    def test_counts_sum_to_13(self):
        result = run_table6()
        assert sum(result.cedar.counts) == 13
        assert sum(result.ymp.counts) == 13


class TestFig1:
    def test_summary_and_render(self):
        info = topology_summary()
        assert info["total_ces"] == 32
        text = render_fig1()
        assert "Cluster 3" in text and "shuffle-exchange" in text


class TestFig3:
    def test_thirteen_points(self):
        points = run_fig3()
        assert len(points) == 13
        census = band_census(points)
        assert sum(census["Cedar"].values()) == 13

    def test_efficiencies_in_unit_interval(self):
        for p in run_fig3():
            assert 0.0 < p.cedar_efficiency <= 1.0
            assert 0.0 < p.ymp_efficiency <= 1.0

    def test_render_contains_bands(self):
        text = render_fig3(run_fig3())
        assert "Cedar:" in text and "YMP:" in text


class TestPPT4Harness:
    def test_cg_model_monotone_in_processors(self):
        cg = CedarCGModel()
        times = [cg.iteration_seconds(65_536, p) for p in (1, 2, 8, 32)]
        assert times == sorted(times, reverse=True)

    def test_cg_model_bandwidth_saturation(self):
        """Beyond ~20 CEs the machine bandwidth caps CG throughput."""
        cg = CedarCGModel()
        assert cg.mflops(176_128, 32) < cg.mflops(176_128, 20) * 1.2

    def test_speedup_accounts_overheads(self):
        cg = CedarCGModel()
        assert cg.speedup(1024, 32) < cg.speedup(176_128, 32)

    def test_grid_complete(self):
        study = run_ppt4()
        assert len(study.cedar.grid) == 30  # 5 processor counts x 6 sizes

    def test_validation(self):
        with pytest.raises(ValueError):
            CedarCGModel().iteration_seconds(1000, 0)


class TestOverheadsHarness:
    def test_three_constructs(self):
        assert [r.construct for r in run_overheads()] == [
            "XDOALL", "SDOALL", "CDOALL",
        ]

    def test_nest_comparison_returns_pair(self):
        x, s = nest_comparison_us(64, 10.0)
        assert x > 0 and s > 0
