"""Tests for the observability layer: metrics, monitors, traces, reports."""

import json

import pytest

from repro.core.config import CedarConfig
from repro.core.context import add_context_observer, remove_context_observer
from repro.core.engine import Engine
from repro.core.machine import CedarMachine
from repro.monitor.metrics import (
    MetricsRegistry,
    Timeline,
    TimeWeighted,
    component_path,
)
from repro.monitor.monitors import attach_standard_monitors, detach_monitors
from repro.monitor.report import (
    ReportCollector,
    RunReport,
    aggregate_reports,
    render_report_summary,
)
from repro.monitor.tracer import ChromeTracer, validate_chrome_trace


def run_small_kernel(machine):
    from repro.cluster.ce import AwaitStream, StartPrefetch, SyncInstruction

    def prog():
        stream = yield StartPrefetch(length=16, stride=1, address=0)
        yield AwaitStream(stream)
        yield SyncInstruction(address=4096)

    return machine.run_programs({0: prog()})


class TestTimeWeighted:
    def test_time_weighted_mean(self):
        tw = TimeWeighted("q")
        tw.update(2.0, 10.0)  # value 0 held 0..10
        tw.update(6.0, 20.0)  # value 2 held 10..20
        # through t=40: 0*10 + 2*10 + 6*20 = 140 over 40 cycles
        assert tw.mean(40.0) == pytest.approx(3.5)
        assert tw.maximum == 6.0

    def test_distribution_includes_open_interval(self):
        tw = TimeWeighted("q")
        tw.update(1.0, 5.0)
        dist = tw.distribution(now=8.0)
        assert dist[0.0] == pytest.approx(5.0)
        assert dist[1.0] == pytest.approx(3.0)

    def test_zero_duration_run(self):
        """A machine that never advances time: the mean degenerates to
        the held value and the distribution stays empty — no 0/0."""
        tw = TimeWeighted("q")
        assert tw.mean(0.0) == 0.0
        assert tw.mean() == 0.0
        assert tw.distribution(0.0) == {}

    def test_snapshot_at_now_before_any_sample(self):
        """Reading through ``now`` with no updates yet must integrate
        the initial value over the whole window, not crash or lie."""
        tw = TimeWeighted("q")
        assert tw.mean(40.0) == 0.0
        assert tw.distribution(40.0) == {0.0: 40.0}
        tw_nonzero = TimeWeighted("q", start_value=3.0)
        assert tw_nonzero.mean(10.0) == pytest.approx(3.0)
        assert tw_nonzero.distribution(10.0) == {3.0: 10.0}

    def test_repeated_same_timestamp_samples(self):
        """Two updates at the same instant: the intermediate value was
        held for zero cycles, so only the final one carries weight."""
        tw = TimeWeighted("q")
        tw.update(2.0, 10.0)
        tw.update(5.0, 10.0)  # instantaneous overwrite
        assert tw.value == 5.0
        assert tw.maximum == 5.0
        assert tw.mean(20.0) == pytest.approx(2.5)  # (0*10 + 5*10) / 20
        dist = tw.distribution(20.0)
        assert 2.0 not in dist  # zero-cycle hold never enters the mix
        assert dist[5.0] == pytest.approx(10.0)

    def test_mean_clamps_a_stale_now(self):
        """``now`` earlier than the last update (a reader racing the
        writer's clock) must not produce a negative open interval."""
        tw = TimeWeighted("q")
        tw.update(4.0, 10.0)
        assert tw.mean(5.0) == tw.mean(10.0)


class TestTimeline:
    def test_spreads_across_bins(self):
        tl = Timeline("busy", bin_cycles=10.0)
        tl.add(start=5.0, duration=10.0)  # half in bin 0, half in bin 1
        fractions = tl.fractions()
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[1] == pytest.approx(0.5)
        assert tl.busy_cycles() == pytest.approx(10.0)

    def test_fraction_clamped(self):
        tl = Timeline("busy", bin_cycles=10.0)
        tl.add(0.0, 8.0)
        tl.add(0.0, 8.0)  # two servers overlapping in one bin
        assert tl.fractions()[0] == 1.0
        assert tl.peak_fraction() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Timeline("bad", bin_cycles=0.0)

    def test_zero_duration_add_is_inert(self):
        tl = Timeline("busy", bin_cycles=10.0)
        tl.add(start=5.0, duration=0.0)
        tl.add(start=5.0, duration=-1.0)
        assert tl.fractions() == {}
        assert tl.busy_cycles() == 0.0
        assert tl.peak_fraction() == 0.0

    def test_negative_start_clamped_to_time_zero(self):
        tl = Timeline("busy", bin_cycles=10.0)
        tl.add(start=-5.0, duration=5.0)
        assert tl.fractions() == {0: pytest.approx(0.5)}

    def test_repeated_same_bin_credit_accumulates(self):
        tl = Timeline("busy", bin_cycles=10.0)
        tl.add(2.0, 3.0)
        tl.add(2.0, 3.0)  # same window, second server
        assert tl.busy_cycles() == pytest.approx(6.0)
        assert tl.fractions()[0] == pytest.approx(0.6)


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timeline("t") is reg.timeline("t")
        reg.counter("a").inc(3)
        assert reg.counter("a").value == 3

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("gmem.module[0].services").inc(5)
        reg.gauge("g").set(2.5)
        reg.time_weighted("q").update(4.0, 10.0)
        reg.histogram("h", 0.0, 16.0).record(3.0)
        reg.timeline("busy").add(0.0, 100.0)
        snap = reg.snapshot(now=20.0)
        text = json.dumps(snap)  # must not raise
        assert "gmem.module[0].services" in text
        assert snap["gmem.module[0].services"] == 5
        assert snap["h"]["samples"] == 1

    def test_component_path(self):
        assert component_path("gmem.module", 12) == "gmem.module[12]"
        assert component_path("net.fwd.stage", 1) == "net.fwd.stage[1]"


class TestEngineSelfMetrics:
    def test_counts_events_and_wall_time(self):
        eng = Engine()
        fired = []
        for i in range(10):
            eng.schedule_after(float(i), fired.append, i)
        eng.run()
        m = eng.self_metrics()
        assert m["events_processed"] == 10
        assert m["sim_cycles"] == 9.0
        assert m["runs"] == 1
        assert m["run_wall_s"] > 0
        assert m["events_per_sec"] > 0
        assert m["pending"] == 0

    def test_reset_clears_self_metrics(self):
        eng = Engine()
        eng.schedule_after(1.0, lambda: None)
        eng.run()
        eng.reset()
        m = eng.self_metrics()
        assert m["events_processed"] == 0 and m["runs"] == 0
        assert m["run_wall_s"] == 0.0


class TestContextObservers:
    def test_observer_sees_every_new_context(self):
        seen = []
        observer = add_context_observer(seen.append)
        try:
            machine = CedarMachine(CedarConfig())
            assert machine.ctx in seen
        finally:
            remove_context_observer(observer)
        before = len(seen)
        CedarMachine(CedarConfig())
        assert len(seen) == before  # removed observers stay silent

    def test_remove_unknown_observer_is_noop(self):
        remove_context_observer(lambda ctx: None)


class TestStandardMonitors:
    def test_monitors_populate_registry(self):
        machine = CedarMachine(CedarConfig(), monitor_port=0)
        registry = MetricsRegistry()
        monitors = attach_standard_monitors(machine.bus, registry)
        try:
            run_small_kernel(machine)
        finally:
            detach_monitors(monitors)
        snap = registry.snapshot(now=machine.engine.now)
        # prefetch activity was seen per port
        assert snap["pfu.port[0].streams"] == 1
        assert snap["pfu.port[0].requests"] == 16
        # memory modules serviced the requests and the sync op
        services = sum(
            v for k, v in snap.items() if k.endswith(".services") and k.startswith("gmem")
        )
        assert services >= 17
        assert snap["sync.total_ops"] == 1
        # the network carried packets and its busy timeline has content
        assert any(k.startswith("net.") and k.endswith(".packets") for k in snap)
        assert snap["gmem.busy"]["busy_cycles"] > 0

    def test_detached_monitors_leave_bus_quiescent(self):
        machine = CedarMachine(CedarConfig())
        monitors = attach_standard_monitors(machine.bus)
        detach_monitors(monitors)
        assert machine.bus.quiescent()


class TestChromeTracer:
    def test_trace_from_machine_run(self):
        machine = CedarMachine(CedarConfig(), monitor_port=0)
        tracer = ChromeTracer().attach(machine.bus)
        try:
            run_small_kernel(machine)
        finally:
            tracer.detach()
        n_events, n_tracks = validate_chrome_trace(tracer.trace())
        assert n_events > 0
        assert n_tracks >= 3  # network stages, memory modules, CE ports
        assert tracer.track_count() == n_tracks
        # detaching stops collection
        count = len(tracer.events)
        machine.reset()
        run_small_kernel(machine)
        assert len(tracer.events) == count

    def test_write_and_validate_file(self, tmp_path):
        machine = CedarMachine(CedarConfig(), monitor_port=0)
        tracer = ChromeTracer().attach(machine.bus)
        run_small_kernel(machine)
        tracer.detach()
        path = tmp_path / "trace.json"
        tracer.write(path)
        from repro.monitor.tracer import validate_chrome_trace_file

        n_events, n_tracks = validate_chrome_trace_file(path)
        assert n_events == len(tracer.events) and n_tracks >= 3

    def test_capacity_overflow_counts_drops(self):
        machine = CedarMachine(CedarConfig(), monitor_port=0)
        tracer = ChromeTracer(capacity=10).attach(machine.bus)
        run_small_kernel(machine)
        tracer.detach()
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        assert tracer.trace()["otherData"]["dropped"] == tracer.dropped

    def test_validation_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "traceEvents"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "pid": 1}]})
        with pytest.raises(ValueError):
            # complete event without a duration
            validate_chrome_trace(
                {"traceEvents": [{"name": "e", "ph": "X", "pid": 1, "ts": 0.0}]}
            )


class TestRunReports:
    def test_collector_instruments_machines(self):
        with ReportCollector() as collector:
            machine = CedarMachine(CedarConfig(), monitor_port=0)
            run_small_kernel(machine)
        assert collector.machines == 1
        (record,) = collector.machine_dicts()
        assert record["config_hash"] == CedarConfig().stable_hash()
        assert record["sim_cycles"] > 0
        assert record["engine"]["events_processed"] > 0
        assert record["metrics"]["pfu.port[0].streams"] == 1

    def test_collector_uninstall_stops_instrumenting(self):
        collector = ReportCollector().install()
        collector.uninstall()
        CedarMachine(CedarConfig())
        assert collector.machines == 0

    def test_report_round_trip_and_aggregate(self):
        report = RunReport(
            experiment="tiny",
            title="Tiny",
            kwargs={"n": 1},
            elapsed_s=0.5,
            cached=False,
            machines=[
                {
                    "config_hash": "x",
                    "sim_cycles": 100.0,
                    "engine": {"events_processed": 10, "run_wall_s": 0.1},
                    "metrics": {},
                }
            ],
        )
        data = json.loads(report.to_json())
        again = RunReport.from_dict(data)
        assert again.total_engine_events() == 10
        assert again.total_sim_cycles() == 100.0
        summary = aggregate_reports([data, data])
        assert summary["experiments"] == 2
        assert summary["total_engine_events"] == 20
        text = render_report_summary([data])
        assert "tiny" in text and "Run reports" in text

    def test_runner_collects_reports(self, tmp_path):
        from repro.experiments.characterization import run_characterization
        from repro.experiments.runner import run_experiment

        # another test may have warmed the experiment's own memo cache,
        # which would leave the collector nothing to observe
        run_characterization.cache_clear()
        result = run_experiment(
            "characterization", cache_dir=tmp_path, collect_report=True
        )
        assert result.report is not None
        assert result.report["experiment"] == "characterization"
        assert result.report["machines_built"] >= 1
        assert result.report["total_engine_events"] > 0
        # the cached replay returns the stored report
        replay = run_experiment(
            "characterization", cache_dir=tmp_path, collect_report=True
        )
        assert replay.cached and replay.report == result.report
        # plain cached runs still work and omit the report
        plain = run_experiment("characterization", cache_dir=tmp_path)
        assert plain.cached and plain.report is None
        assert plain.output == result.output
