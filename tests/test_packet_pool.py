"""The packet free list: recycling semantics and the bit-identity of
pooled runs.

Packets are the simulator's top allocation site, so request/reply
packets are recycled through a bounded module-level free list
(:mod:`repro.network.packet`).  The pool is pure mechanism — it must be
impossible to observe from simulated results: every acquired packet
starts from a fully reset state, exhaustion falls back to plain
allocation, and two registered experiments must render bit-identical
artifacts with the pool on and off.
"""

import pytest

from repro.network import packet as packet_mod
from repro.network.packet import Packet, PacketKind, pool_stats, set_pool_enabled


@pytest.fixture(autouse=True)
def clean_pool():
    """Each test starts with an empty, enabled pool and restores the
    process-wide default afterwards."""
    previous = set_pool_enabled(True)
    packet_mod._pool.clear()
    yield
    packet_mod._pool.clear()
    set_pool_enabled(previous)


class TestRecycling:
    def test_release_then_acquire_recycles_the_object(self):
        first = Packet.acquire(PacketKind.READ_REQ, 0, 3, 64)
        first.release()
        assert pool_stats()["free"] == 1
        second = Packet.acquire(PacketKind.WRITE_REQ, 1, 2, 128)
        assert second is first  # recycled, not reallocated
        assert pool_stats()["free"] == 0

    def test_release_is_idempotent(self):
        packet = Packet.acquire(PacketKind.READ_REQ, 0, 1, 0)
        packet.release()
        packet.release()
        assert pool_stats()["free"] == 1

    def test_exhaustion_regrows_through_allocation(self, monkeypatch):
        monkeypatch.setattr(packet_mod, "_POOL_MAX", 4)
        packets = [Packet.acquire(PacketKind.READ_REQ, 0, 1, a) for a in range(6)]
        for packet in packets:
            packet.release()
        # releases beyond the cap are dropped, not queued
        assert pool_stats()["free"] == 4
        # drain past empty: the pool regrows through plain allocation
        reacquired = [
            Packet.acquire(PacketKind.READ_REQ, 0, 1, a) for a in range(6)
        ]
        assert pool_stats()["free"] == 0
        assert len({id(p) for p in reacquired}) == 6
        assert all(p.address == a for a, p in enumerate(reacquired))

    def test_disabled_pool_allocates_fresh_and_ignores_release(self):
        set_pool_enabled(False)
        packet = Packet.acquire(PacketKind.READ_REQ, 0, 1, 0)
        packet.release()
        assert pool_stats() == {"free": 0, "max": packet_mod._POOL_MAX,
                                "enabled": 0}
        assert Packet.acquire(PacketKind.READ_REQ, 0, 1, 0) is not packet

    def test_disabling_clears_the_free_list(self):
        Packet.acquire(PacketKind.READ_REQ, 0, 1, 0).release()
        assert pool_stats()["free"] == 1
        set_pool_enabled(False)
        assert pool_stats()["free"] == 0


class TestNoStaleState:
    def test_every_field_is_reset_on_acquire(self):
        packet = Packet.acquire(PacketKind.READ_REQ, 0, 3, 64, words=2)
        old_id = packet.request_id
        # dirty every mutable field a reference can touch in flight
        packet.meta["pfu_stream"] = 7
        packet.meta["faults"] = ["transient@fwd.s0"]
        packet.injected_at = 123.0
        packet.trace = False  # a sampling collector skipped it
        packet.become_reply(PacketKind.READ_REPLY, words=1)
        assert packet.is_reply
        packet.release()

        recycled = Packet.acquire(PacketKind.READ_REQ, 4, 5, 256, words=3)
        assert recycled is packet
        assert recycled.request_id > old_id  # a *new* reference identity
        assert recycled.meta == {}  # no fault annotations, no stream tags
        assert recycled.injected_at is None
        assert recycled.trace is True  # sampling marks never leak
        assert recycled.is_reply is False
        assert (recycled.kind, recycled.src, recycled.dst) == (
            PacketKind.READ_REQ, 4, 5)
        assert (recycled.address, recycled.words) == (256, 3)

    def test_become_reply_keeps_identity_and_meta(self):
        packet = Packet.acquire(PacketKind.READ_REQ, 2, 9, 64, words=1)
        packet.meta["pfu_stream"] = 3
        rid = packet.request_id
        reply = packet.become_reply(PacketKind.READ_REPLY, words=2)
        assert reply is packet
        assert reply.request_id == rid
        assert (reply.src, reply.dst) == (9, 2)  # direction reversed
        assert reply.is_reply
        assert reply.meta["pfu_stream"] == 3  # handler metadata survives
        assert reply.trace is True  # the mark rides through the turnaround


class TestBitIdentity:
    """Pooled and unpooled runs must be indistinguishable in simulated
    results — here at the strongest level available: the fully rendered
    artifacts of registered experiments."""

    @pytest.mark.parametrize("name", ["characterization", "table2"])
    def test_registered_experiment_is_bit_identical(self, name):
        from repro.experiments import characterization, table2  # noqa: F401
        from repro.experiments.runner import clear_memoized_runs, experiment

        exp = experiment(name)
        kwargs = exp.arguments(True)

        clear_memoized_runs()
        pooled = exp.runner(**kwargs)
        try:
            set_pool_enabled(False)
            clear_memoized_runs()
            unpooled = exp.runner(**kwargs)
        finally:
            set_pool_enabled(True)
        clear_memoized_runs()
        assert pooled == unpooled
