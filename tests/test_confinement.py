"""Tests for the single-cluster confinement option (Perfect rules:
"in a few cases program execution was confined to a single cluster to
avoid intercluster overhead")."""

import pytest

from repro.perf.model import CedarApplicationModel
from repro.perfect.profiles import CodeProfile, LoopProfile, PERFECT_CODES
from repro.restructurer.pipeline import AUTOMATABLE_PIPELINE, KAP_PIPELINE
from repro.xylem.runtime import LoopKind

MODEL = CedarApplicationModel()


def fine_grain_code(grain_us: float = 20.0) -> CodeProfile:
    """A synthetic code whose parallel loops are so fine-grained that
    XDOALL scheduling overhead dominates."""
    invocations = 200_000
    trips = 32
    serial = invocations * trips * grain_us * 1e-6  # all time in the loop
    return CodeProfile(
        name="FINEGRAIN",
        serial_seconds=serial,
        flops=serial * 5e6,
        loops=(
            LoopProfile(
                label="kap_loops",
                weight=1.0,
                invocations=invocations,
                trips=trips,
                kind=LoopKind.XDOALL,
                vector_speedup=2.0,
                global_vector_fraction=0.0,
                feature="clean",
            ),
        ),
        serial_fraction=0.0,
    )


class TestConfinementMechanism:
    def test_fine_grain_loops_prefer_one_cluster(self):
        """When iteration grain is comparable to the 30us XDOALL fetch,
        the concurrency bus's microsecond costs beat 4x the CEs."""
        code = fine_grain_code(grain_us=20.0)
        full = MODEL.execute(code, KAP_PIPELINE)
        confined = MODEL.execute(code, KAP_PIPELINE, confine_to_cluster=True)
        assert confined.seconds < full.seconds

    def test_coarse_grain_loops_prefer_the_full_machine(self):
        """The derived Perfect profiles are coarse-grained: every code
        runs fastest on all 32 CEs."""
        for name, code in PERFECT_CODES.items():
            full = MODEL.execute(code, AUTOMATABLE_PIPELINE)
            confined = MODEL.execute(
                code, AUTOMATABLE_PIPELINE, confine_to_cluster=True
            )
            assert full.seconds <= confined.seconds * 1.001, name

    def test_confinement_caps_processors_not_semantics(self):
        code = PERFECT_CODES["MDG"]
        confined = MODEL.execute(code, AUTOMATABLE_PIPELINE, confine_to_cluster=True)
        assert "(1 cluster)" in confined.version
        assert confined.parallel_coverage == pytest.approx(
            MODEL.execute(code, AUTOMATABLE_PIPELINE).parallel_coverage
        )

    def test_crossover_grain(self):
        """The breakeven grain sits between the CDOALL and XDOALL fetch
        costs, as the Section 3.2 arithmetic implies."""
        fine = fine_grain_code(grain_us=5.0)
        coarse = fine_grain_code(grain_us=500.0)
        assert (
            MODEL.execute(fine, KAP_PIPELINE, confine_to_cluster=True).seconds
            < MODEL.execute(fine, KAP_PIPELINE).seconds
        )
        assert (
            MODEL.execute(coarse, KAP_PIPELINE).seconds
            < MODEL.execute(coarse, KAP_PIPELINE, confine_to_cluster=True).seconds
        )
