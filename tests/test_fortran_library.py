"""Tests for the Cedar Fortran vector library and the DSL-level CG."""

import numpy as np
import pytest

from repro.fortran import CedarFortran
from repro.fortran.library import (
    PentadiagOperator,
    cg_solve,
    pentadiag_matvec,
    vaxpy,
    vcopy,
    vdot,
    vnorm2,
    vscale,
)
from repro.kernels.reference import (
    cg_solve as reference_cg,
    make_spd_pentadiag,
    pentadiag_matvec as reference_matvec,
)


@pytest.fixture
def cf():
    return CedarFortran()


def garr(cf, values, name=""):
    return cf.global_array(np.asarray(values, dtype=float), name=name)


class TestBlasOps:
    def test_vcopy(self, cf):
        src = garr(cf, [1.0, 2.0, 3.0])
        dst = garr(cf, np.zeros(3))
        vcopy(cf, dst, src)
        np.testing.assert_array_equal(dst.data, src.data)

    def test_vscale(self, cf):
        x = garr(cf, [1.0, -2.0])
        out = garr(cf, np.zeros(2))
        vscale(cf, out, 3.0, x)
        np.testing.assert_array_equal(out.data, [3.0, -6.0])

    def test_vaxpy(self, cf):
        x = garr(cf, [1.0, 1.0])
        y = garr(cf, [10.0, 20.0])
        out = garr(cf, np.zeros(2))
        vaxpy(cf, out, 2.0, x, y)
        np.testing.assert_array_equal(out.data, [12.0, 22.0])

    def test_vdot_and_norm(self, cf):
        x = garr(cf, [3.0, 4.0])
        assert vdot(cf, x, x) == pytest.approx(25.0)
        assert vnorm2(cf, x) == pytest.approx(5.0)

    def test_dot_length_mismatch(self, cf):
        with pytest.raises(ValueError):
            cf.dot(garr(cf, [1.0]), garr(cf, [1.0, 2.0]))

    def test_ops_charge_time(self, cf):
        x = garr(cf, np.zeros(1024))
        out = garr(cf, np.zeros(1024))
        before = cf.clock_us
        vaxpy(cf, out, 1.0, x, out)
        vdot(cf, x, x)
        assert cf.clock_us > before


class TestPentadiagOperator:
    def test_matches_reference_matvec(self, cf):
        n = 64
        diagonals = make_spd_pentadiag(n, seed=11)
        op = PentadiagOperator.from_diagonals(cf, diagonals)
        rng = np.random.default_rng(11)
        xv = rng.standard_normal(n)
        x = garr(cf, xv)
        y = garr(cf, np.zeros(n))
        pentadiag_matvec(cf, y, op, x)
        np.testing.assert_allclose(y.data, reference_matvec(diagonals, xv))


class TestFortranCG:
    def test_agrees_with_reference_solver(self, cf):
        n = 128
        diagonals = make_spd_pentadiag(n, seed=21)
        rng = np.random.default_rng(21)
        bv = rng.standard_normal(n)
        op = PentadiagOperator.from_diagonals(cf, diagonals)
        b = garr(cf, bv, name="b")
        result = cg_solve(cf, op, b, tol=1e-10)
        reference = reference_cg(diagonals, bv, tol=1e-10)
        np.testing.assert_allclose(result.x, reference.x, atol=1e-6)
        assert result.iterations == reference.iterations

    def test_residual_small(self, cf):
        n = 96
        diagonals = make_spd_pentadiag(n, seed=5)
        op = PentadiagOperator.from_diagonals(cf, diagonals)
        b = garr(cf, np.ones(n))
        result = cg_solve(cf, op, b, tol=1e-9)
        assert result.residual < 1e-8

    def test_simulated_time_scales_with_problem(self):
        times = []
        for n in (64, 256):
            cf = CedarFortran()
            diagonals = make_spd_pentadiag(n, seed=2)
            op = PentadiagOperator.from_diagonals(cf, diagonals)
            b = cf.global_array(np.ones(n))
            result = cg_solve(cf, op, b, tol=1e-8, max_iter=10)
            times.append(result.simulated_us / result.iterations)
        assert times[1] > times[0]

    def test_max_iter_cap(self, cf):
        n = 64
        diagonals = make_spd_pentadiag(n, seed=3)
        op = PentadiagOperator.from_diagonals(cf, diagonals)
        b = garr(cf, np.ones(n))
        result = cg_solve(cf, op, b, tol=1e-16, max_iter=2)
        assert result.iterations == 2
