"""Tests for the performance-monitoring hardware models."""

import pytest

from repro.monitor.histogram import Histogrammer
from repro.monitor.probes import PrefetchProbe
from repro.monitor.tracer import EventTracer


class TestEventTracer:
    def test_records_in_order(self):
        t = EventTracer()
        t.post(1.0, "sig", "a")
        t.post(2.0, "sig", "b")
        assert [e.value for e in t.events] == ["a", "b"]

    def test_capacity_and_drop_counting(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.post(float(i), "sig")
        assert len(t.events) == 2 and t.dropped == 3

    def test_cascading(self):
        spill = EventTracer(capacity=10)
        t = EventTracer(capacity=2, cascade=spill)
        for i in range(5):
            t.post(float(i), "sig")
        assert len(t) == 5
        assert t.dropped == 0
        assert len(spill.events) == 3

    def test_dropped_spans_cascade(self):
        """When the whole chain overflows, the head's ``dropped`` must
        report loss anywhere in the cascade, not just its own."""
        spill = EventTracer(capacity=2)
        t = EventTracer(capacity=2, cascade=spill)
        for i in range(7):
            t.post(float(i), "sig")
        assert spill.dropped == 3
        assert t.dropped == 3  # cascade loss surfaces at the head

    def test_filter_spans_cascade(self):
        spill = EventTracer(capacity=10)
        t = EventTracer(capacity=1, cascade=spill)
        t.post(0.0, "a")
        t.post(1.0, "b")
        t.post(2.0, "a")
        assert [e.time for e in t.filter("a")] == [0.0, 2.0]

    def test_software_event_hook(self):
        t = EventTracer()
        clock = iter([5.0, 7.0])
        hook = t.hook("sw", lambda: next(clock))
        hook("x")
        hook("y")
        assert [(e.time, e.value) for e in t.events] == [(5.0, "x"), (7.0, "y")]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestHistogrammer:
    def test_binning(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(0.5)
        h.record(9.5)
        assert h.count(0) == 1 and h.count(9) == 1
        assert h.samples == 2

    def test_out_of_range_clamps(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(-5.0)
        h.record(50.0)
        assert h.count(0) == 1 and h.count(9) == 1

    def test_mean(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        for v in (1.0, 3.0, 5.0):
            h.record(v)
        assert h.mean() == pytest.approx(3.5, abs=1.0)  # bin centers

    def test_percentile(self):
        h = Histogrammer(0.0, 100.0, bins=100)
        for v in range(100):
            h.record(float(v))
        assert h.percentile(0.5) == pytest.approx(50.0, abs=2.0)

    def test_counter_saturation(self):
        h = Histogrammer(0.0, 1.0, bins=1)
        h._counts[0] = Histogrammer.COUNTER_MAX
        h.record(0.5)
        assert h.count(0) == Histogrammer.COUNTER_MAX

    def test_empty_statistics_raise(self):
        h = Histogrammer(0.0, 1.0)
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.percentile(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogrammer(1.0, 1.0)
        with pytest.raises(ValueError):
            Histogrammer(0.0, 1.0, bins=0)


class TestPrefetchProbe:
    def test_latency_and_interarrival(self):
        p = PrefetchProbe()
        p.begin_block()
        p.record_issue(0, 100.0)
        p.record_issue(1, 101.0)
        p.record_issue(2, 102.0)
        p.record_arrival(0, 108.0)
        p.record_arrival(1, 109.5)
        p.record_arrival(2, 111.0)
        s = p.summary()
        assert s.first_word_latency == pytest.approx(8.0)
        assert s.interarrival == pytest.approx(1.5)
        assert s.blocks == 1

    def test_out_of_order_arrivals(self):
        """Full/empty bits tolerate out-of-order returns; the first
        arrival defines the latency regardless of word index."""
        p = PrefetchProbe()
        p.begin_block()
        p.record_issue(0, 0.0)
        p.record_issue(1, 1.0)
        p.record_arrival(1, 7.0)   # word 1 returns first
        p.record_arrival(0, 9.0)
        assert p.latencies() == [7.0]
        assert p.interarrivals() == [2.0]

    def test_multiple_blocks_averaged(self):
        p = PrefetchProbe()
        for base in (0.0, 100.0):
            p.begin_block()
            p.record_issue(0, base)
            p.record_arrival(0, base + 8.0)
        s = p.summary()
        assert s.blocks == 2 and s.samples_latency == 2
        assert s.first_word_latency == pytest.approx(8.0)

    def test_misuse_raises(self):
        p = PrefetchProbe()
        with pytest.raises(RuntimeError):
            p.record_issue(0, 0.0)
        p.begin_block()
        with pytest.raises(RuntimeError):
            p.record_arrival(0, 1.0)  # never issued

    def test_no_completed_blocks_gives_empty_summary(self):
        """A probe that saw nothing reports zeros, not an exception —
        short smoke runs may finish before any block completes."""
        p = PrefetchProbe()
        s = p.summary()
        assert s.blocks == 0
        assert s.samples_latency == 0 and s.samples_interarrival == 0
        assert s.first_word_latency == 0.0 and s.interarrival == 0.0


class TestSignalBus:
    def _bus(self):
        from repro.monitor.signals import SignalBus

        return SignalBus()

    def test_emit_reaches_keyed_subscriber(self):
        bus = self._bus()
        seen = []
        bus.subscribe("pfu.request", lambda p, i, t: seen.append((p, i, t)), key=3)
        bus.signal("pfu.request", key=3).emit(3, 7, 100.0)
        assert seen == [(3, 7, 100.0)]

    def test_other_keys_are_isolated(self):
        bus = self._bus()
        seen = []
        bus.subscribe("pfu.request", lambda *a: seen.append(a), key=3)
        sig_other = bus.signal("pfu.request", key=4)
        assert not sig_other  # port 4 has no subscribers
        sig_other.emit(4, 0, 0.0)
        assert seen == []

    def test_zero_subscriber_signal_is_falsy(self):
        bus = self._bus()
        sig = bus.signal("gmem.service", key=0)
        assert not sig
        bus.subscribe("gmem.service", lambda *a: None, key=0)
        assert sig  # same channel object turns truthy

    def test_publisher_guard_never_builds_payload(self):
        bus = self._bus()
        sig = bus.signal("net.hop")

        def expensive():
            raise AssertionError("payload built with no subscribers")

        # the publisher pattern: payload construction behind the guard
        if sig:
            sig.emit(expensive(), None, 0.0)
        # no exception: the guard short-circuited

    def test_broadcast_subscription_sees_existing_and_future_keys(self):
        bus = self._bus()
        seen = []
        bus.signal("gmem.service", key=0)  # pre-existing channel
        bus.subscribe("gmem.service", lambda m, p, t: seen.append(m))
        bus.signal("gmem.service", key=0).emit(0, None, 1.0)
        bus.signal("gmem.service", key=9).emit(9, None, 2.0)  # created later
        assert seen == [0, 9]

    def test_unsubscribe_detaches_everywhere(self):
        bus = self._bus()
        seen = []
        sub = bus.subscribe("gmem.service", lambda m, p, t: seen.append(m))
        bus.signal("gmem.service", key=1).emit(1, None, 0.0)
        bus.unsubscribe(sub)
        bus.signal("gmem.service", key=1).emit(1, None, 1.0)
        bus.signal("gmem.service", key=2).emit(2, None, 2.0)
        assert seen == [1]
        assert bus.quiescent()

    def test_subscribe_during_emit_affects_next_emit_only(self):
        bus = self._bus()
        sig = bus.signal("ce.done", key=0)
        seen = []

        def first(port, time):
            seen.append("first")
            bus.subscribe("ce.done", lambda p, t: seen.append("late"), key=0)

        bus.subscribe("ce.done", first, key=0)
        sig.emit(0, 1.0)
        assert seen == ["first"]  # snapshot: late joiner not called in-flight
        seen.clear()
        sig.emit(0, 2.0)
        assert seen.count("late") == 1

    def test_unsubscribe_during_emit_is_safe(self):
        bus = self._bus()
        sig = bus.signal("ce.done", key=0)
        seen = []
        subs = []

        def self_removing(port, time):
            seen.append("once")
            bus.unsubscribe(subs[0])

        subs.append(bus.subscribe("ce.done", self_removing, key=0))
        bus.subscribe("ce.done", lambda p, t: seen.append("stable"), key=0)
        sig.emit(0, 1.0)
        sig.emit(0, 2.0)
        assert seen == ["once", "stable", "stable"]

    def test_undeclared_signal_rejected_when_strict(self):
        bus = self._bus()
        with pytest.raises(KeyError):
            bus.signal("made.up")
        bus.declare("made.up", ("x",))
        assert bus.signal("made.up").fields == ("x",)

    def test_redeclaration_with_other_fields_rejected(self):
        bus = self._bus()
        with pytest.raises(ValueError):
            bus.declare("pfu.request", ("different",))

    def test_channel_identity_is_stable(self):
        bus = self._bus()
        assert bus.signal("net.hop", key="fwd") is bus.signal("net.hop", key="fwd")

    def test_subscriber_count_counts_distinct_subscriptions(self):
        """A broadcast subscription mirrors into every keyed channel; it
        is still ONE subscription and must be counted once."""
        bus = self._bus()
        bus.signal("gmem.service", key=0)
        bus.signal("gmem.service", key=1)
        bus.signal("gmem.service", key=2)
        bus.subscribe("gmem.service", lambda *a: None)  # broadcast
        assert bus.subscriber_count("gmem.service") == 1
        bus.subscribe("gmem.service", lambda *a: None, key=1)
        assert bus.subscriber_count("gmem.service") == 2

    def test_subscriber_count_broadcast_covers_late_channels(self):
        bus = self._bus()
        bus.subscribe("gmem.service", lambda *a: None)
        bus.signal("gmem.service", key=7)  # created after the broadcast
        bus.signal("gmem.service", key=8)
        assert bus.subscriber_count("gmem.service") == 1
