"""Tests for the performance-monitoring hardware models."""

import pytest

from repro.monitor.histogram import Histogrammer
from repro.monitor.probes import PrefetchProbe
from repro.monitor.tracer import EventTracer


class TestEventTracer:
    def test_records_in_order(self):
        t = EventTracer()
        t.post(1.0, "sig", "a")
        t.post(2.0, "sig", "b")
        assert [e.value for e in t.events] == ["a", "b"]

    def test_capacity_and_drop_counting(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.post(float(i), "sig")
        assert len(t.events) == 2 and t.dropped == 3

    def test_cascading(self):
        spill = EventTracer(capacity=10)
        t = EventTracer(capacity=2, cascade=spill)
        for i in range(5):
            t.post(float(i), "sig")
        assert len(t) == 5
        assert t.dropped == 0
        assert len(spill.events) == 3

    def test_filter_spans_cascade(self):
        spill = EventTracer(capacity=10)
        t = EventTracer(capacity=1, cascade=spill)
        t.post(0.0, "a")
        t.post(1.0, "b")
        t.post(2.0, "a")
        assert [e.time for e in t.filter("a")] == [0.0, 2.0]

    def test_software_event_hook(self):
        t = EventTracer()
        clock = iter([5.0, 7.0])
        hook = t.hook("sw", lambda: next(clock))
        hook("x")
        hook("y")
        assert [(e.time, e.value) for e in t.events] == [(5.0, "x"), (7.0, "y")]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestHistogrammer:
    def test_binning(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(0.5)
        h.record(9.5)
        assert h.count(0) == 1 and h.count(9) == 1
        assert h.samples == 2

    def test_out_of_range_clamps(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        h.record(-5.0)
        h.record(50.0)
        assert h.count(0) == 1 and h.count(9) == 1

    def test_mean(self):
        h = Histogrammer(0.0, 10.0, bins=10)
        for v in (1.0, 3.0, 5.0):
            h.record(v)
        assert h.mean() == pytest.approx(3.5, abs=1.0)  # bin centers

    def test_percentile(self):
        h = Histogrammer(0.0, 100.0, bins=100)
        for v in range(100):
            h.record(float(v))
        assert h.percentile(0.5) == pytest.approx(50.0, abs=2.0)

    def test_counter_saturation(self):
        h = Histogrammer(0.0, 1.0, bins=1)
        h._counts[0] = Histogrammer.COUNTER_MAX
        h.record(0.5)
        assert h.count(0) == Histogrammer.COUNTER_MAX

    def test_empty_statistics_raise(self):
        h = Histogrammer(0.0, 1.0)
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.percentile(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogrammer(1.0, 1.0)
        with pytest.raises(ValueError):
            Histogrammer(0.0, 1.0, bins=0)


class TestPrefetchProbe:
    def test_latency_and_interarrival(self):
        p = PrefetchProbe()
        p.begin_block()
        p.record_issue(0, 100.0)
        p.record_issue(1, 101.0)
        p.record_issue(2, 102.0)
        p.record_arrival(0, 108.0)
        p.record_arrival(1, 109.5)
        p.record_arrival(2, 111.0)
        s = p.summary()
        assert s.first_word_latency == pytest.approx(8.0)
        assert s.interarrival == pytest.approx(1.5)
        assert s.blocks == 1

    def test_out_of_order_arrivals(self):
        """Full/empty bits tolerate out-of-order returns; the first
        arrival defines the latency regardless of word index."""
        p = PrefetchProbe()
        p.begin_block()
        p.record_issue(0, 0.0)
        p.record_issue(1, 1.0)
        p.record_arrival(1, 7.0)   # word 1 returns first
        p.record_arrival(0, 9.0)
        assert p.latencies() == [7.0]
        assert p.interarrivals() == [2.0]

    def test_multiple_blocks_averaged(self):
        p = PrefetchProbe()
        for base in (0.0, 100.0):
            p.begin_block()
            p.record_issue(0, base)
            p.record_arrival(0, base + 8.0)
        s = p.summary()
        assert s.blocks == 2 and s.samples_latency == 2
        assert s.first_word_latency == pytest.approx(8.0)

    def test_misuse_raises(self):
        p = PrefetchProbe()
        with pytest.raises(RuntimeError):
            p.record_issue(0, 0.0)
        p.begin_block()
        with pytest.raises(RuntimeError):
            p.record_arrival(0, 1.0)  # never issued
        with pytest.raises(RuntimeError):
            p.summary()  # no completed blocks
